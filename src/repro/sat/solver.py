"""CDCL SAT solver with optional resolution-proof logging.

The solver implements the standard conflict-driven clause-learning loop:
two-watched-literal propagation with a dedicated binary-clause fast path,
first-UIP conflict analysis with self-subsuming clause minimization,
VSIDS-style variable activities on an indexed mutable binary heap with phase
saving, and Luby restarts.  It supports incremental solving under assumptions
(the MiniSat-style interface used by the PDR/IC3 and k-induction engines)
and, when ``proof=True``, records the resolution derivation of every learned
clause so that Craig interpolants can be extracted from refutations (used by
the interpolation-based engines).  When a solve under assumptions is
unsatisfiable, a proof-logging solver additionally records the resolution
chain deriving a clause over the negated failed assumptions
(:attr:`Solver.assumption_core_chain`), so interpolants can be extracted from
assumption-based (retractable) queries as well.

Long-lived *sessions* retract constraint groups through activation literals:
clauses guarded by ``-act`` are active while ``act`` is assumed and are
permanently disabled by :meth:`Solver.retire_activation`, which also
garbage-collects the learned clauses that depended on the guard.

The implementation favours clarity over raw speed; the benchmark circuits in
this reproduction are sized so that a pure-Python solver handles them.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sat.cnf import CNF, var_of


class SolverResult:
    """Tri-state result of a :meth:`Solver.solve` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class SolverInterrupted(Exception):
    """Raised inside :meth:`Solver.solve` when an armed deadline expires.

    Armed with :meth:`Solver.set_deadline`, checked cooperatively in the
    propagate/decide loop (not only on conflicts), so even a solve that
    produces no conflicts — deep propagation, decision-heavy plateaus, or a
    wedged search injected by the chaos harness — is interrupted without
    killing the process.  The solver backtracks to level 0 before raising,
    so it remains usable afterwards.
    """


@dataclass
class SolverStats:
    """Counters describing the work performed by the solver."""

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    max_decision_level: int = 0
    #: learned-clause database reductions performed (see Solver._reduce_db)
    reduce_db: int = 0
    #: learned clauses deleted by database reductions
    deleted_clauses: int = 0
    #: literals removed from learned clauses by self-subsuming minimization
    minimized_literals: int = 0
    #: activation literals permanently retired (see Solver.retire_activation)
    retired_activations: int = 0
    #: learned clauses garbage-collected because they depended on a retired guard
    retired_clauses: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (JSON reports, CLI output)."""
        return asdict(self)

    def add(self, other: "SolverStats") -> None:
        """Accumulate another solver's counters into this one."""
        for key, value in asdict(other).items():
            if key == "max_decision_level":
                self.max_decision_level = max(self.max_decision_level, value)
            else:
                setattr(self, key, getattr(self, key) + value)


def luby(index: int) -> int:
    """Return the ``index``-th element (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...:
    whenever ``index`` is ``2**k - 1`` the value is ``2**(k - 1)``, otherwise
    recurse on ``index - (2**k - 1)`` for the largest such block below it.
    (The original recurrence subtracted ``2**(k - 1) - 1``, which loops
    forever for ``index == 2`` — any solve reaching its second restart hung.)
    """
    k = 1
    while (1 << (k + 1)) - 1 <= index:
        k += 1
    while index != (1 << k) - 1:
        index -= (1 << k) - 1
        k = 1
        while (1 << (k + 1)) - 1 <= index:
            k += 1
    return 1 << (k - 1)


#: Proof chain: (antecedent clause ids, pivot variables).  Resolving the
#: antecedents left to right on the given pivots yields the derived clause.
ProofChain = Tuple[Tuple[int, ...], Tuple[int, ...]]


class Solver:
    """A CDCL SAT solver.

    Parameters
    ----------
    proof:
        When True, the solver records for every learned clause the sequence of
        antecedent clauses and resolution pivots used to derive it, and on a
        final refutation stores the chain deriving the empty clause.  This is
        required by :class:`repro.sat.interpolate.Interpolator`.  Proof
        logging disables learned-clause garbage collection (deleted clauses
        could be antecedents of the final refutation).
    reduce_base:
        Number of *live* learned clauses that triggers the first database
        reduction; each reduction raises the threshold by ``reduce_growth``.
        Deep unrolls previously grew the clause database without bound — the
        reduction keeps the learned part in check while original (problem)
        clauses are never touched.
    """

    #: decisions between cooperative deadline checks in the search loop
    CHECK_INTERVAL = 128

    #: process-wide hook called at every cooperative checkpoint (used by the
    #: fault-injection harness to wedge a solve mid-search); ``None`` normally
    fault_hook = None

    def __init__(
        self,
        proof: bool = False,
        reduce_base: int = 2000,
        reduce_growth: float = 1.3,
    ) -> None:
        self.proof_logging = proof
        self.stats = SolverStats()
        #: armed cooperative deadline (see :meth:`set_deadline`)
        self._deadline: Optional[float] = None

        # learned-clause database reduction (clause GC)
        self.reduce_base = reduce_base
        self.reduce_growth = reduce_growth
        self._next_reduce = reduce_base
        #: live learned clause id -> activity (bumped when used in analysis)
        self._learned_activity: Dict[int, float] = {}
        #: live learned clause id -> literal-block distance at learn time
        self._learned_lbd: Dict[int, int] = {}
        self._cla_inc = 1.0
        self._cla_decay = 0.999

        # clause storage: clause id -> list of literals (watched literals first)
        self._clauses: List[List[int]] = []
        self._clause_learned: List[bool] = []
        # proof: clause id -> (antecedent clause ids, pivot vars) or None
        self.clause_proof: List[Optional[ProofChain]] = []
        # final refutation proof (set when solve() returns UNSAT at level 0)
        self.final_proof: Optional[ProofChain] = None

        self._num_vars = 0
        # per-variable state, index 0 unused
        self._assign: List[Optional[bool]] = [None]
        self._level: List[int] = [0]
        self._reason: List[Optional[int]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        # watch lists indexed by literal: literal l occupies slot 2*|l| (+1 if
        # negative), so propagation is pure list indexing, no dict churn;
        # slots start as None and get their list on first use — bulk variable
        # allocation (template stamping) then never creates empty list objects
        self._watches: List[Optional[List[int]]] = [None, None]
        # binary-clause fast path: slot idx(l) holds (other, cid) pairs of the
        # two-literal clauses containing -l — propagation touches each pair
        # with two list reads instead of the generic watched-literal machinery
        self._bin_watches: List[Optional[List[Tuple[int, int]]]] = [None, None]
        # literal-indexed truth values (same indexing): 0 unassigned,
        # 1 true, -1 false; kept in sync by _enqueue/_cancel_until
        self._lit_value: List[int] = [0, 0]
        self._queue_head = 0
        # VSIDS order: an indexed mutable binary max-heap over activities.
        # _heap holds variables, _heap_pos[var] its position (-1 when absent),
        # so bumps sift in place instead of flooding a tuple heap with stale
        # entries that every pick has to skip over.
        self._heap: List[int] = []
        self._heap_pos: List[int] = [-1]

        self._var_inc = 1.0
        self._var_decay = 0.95

        self._ok = True  # False once a top-level refutation has been found
        self.failed_assumptions: Set[int] = set()
        #: resolution chain deriving :attr:`assumption_core` from the clause
        #: database when the last solve was UNSAT under assumptions (requires
        #: ``proof=True``); the derived clause's literals are negations of
        #: failed assumptions, so resolving it against the assumption "unit
        #: clauses" yields the empty clause (used by the interpolator)
        self.assumption_core_chain: Optional[ProofChain] = None
        #: the clause derived by :attr:`assumption_core_chain`
        self.assumption_core: Tuple[int, ...] = ()
        self._model: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable and return it."""
        self._num_vars += 1
        self._assign.append(None)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watches.append(None)
        self._watches.append(None)
        self._bin_watches.append(None)
        self._bin_watches.append(None)
        self._lit_value.append(0)
        self._lit_value.append(0)
        # a fresh variable has the minimum activity (0.0), so appending it at
        # a heap leaf keeps the heap property without sifting
        self._heap_pos.append(len(self._heap))
        self._heap.append(self._num_vars)
        return self._num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables; returns them as a contiguous block.

        Bulk-extends the per-variable arrays instead of growing them one
        variable at a time; frame-template instantiation allocates its
        internal gate variables through this.
        """
        if count <= 0:
            return []
        first = self._num_vars + 1
        self._num_vars += count
        self._assign.extend([None] * count)
        self._level.extend([0] * count)
        self._reason.extend([None] * count)
        self._activity.extend([0.0] * count)
        self._phase.extend([False] * count)
        self._watches.extend([None] * (2 * count))
        self._bin_watches.extend([None] * (2 * count))
        self._lit_value.extend([0] * (2 * count))
        fresh = list(range(first, first + count))
        # fresh variables carry the minimum activity (0.0): bulk-appending
        # them as heap leaves keeps the heap property without any sifting
        heap = self._heap
        base = len(heap)
        self._heap_pos.extend(range(base, base + count))
        heap.extend(fresh)
        return fresh

    def ensure_vars(self, num_vars: int) -> None:
        """Make sure variables ``1..num_vars`` exist."""
        while self._num_vars < num_vars:
            self.new_var()

    # ------------------------------------------------------------------
    # VSIDS order heap (indexed mutable binary max-heap over activities)
    # ------------------------------------------------------------------
    def _heap_insert(self, var: int) -> None:
        """Insert ``var`` into the order heap (no-op when already present)."""
        pos = self._heap_pos[var]
        if pos >= 0:
            return
        heap = self._heap
        self._heap_pos[var] = len(heap)
        heap.append(var)
        self._heap_sift_up(len(heap) - 1)

    def _heap_sift_up(self, pos: int) -> None:
        heap = self._heap
        heap_pos = self._heap_pos
        activity = self._activity
        var = heap[pos]
        value = activity[var]
        while pos > 0:
            parent = (pos - 1) >> 1
            parent_var = heap[parent]
            if activity[parent_var] >= value:
                break
            heap[pos] = parent_var
            heap_pos[parent_var] = pos
            pos = parent
        heap[pos] = var
        heap_pos[var] = pos

    def _heap_sift_down(self, pos: int) -> None:
        heap = self._heap
        heap_pos = self._heap_pos
        activity = self._activity
        size = len(heap)
        var = heap[pos]
        value = activity[var]
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and activity[heap[right]] > activity[heap[child]]:
                child = right
            child_var = heap[child]
            if value >= activity[child_var]:
                break
            heap[pos] = child_var
            heap_pos[child_var] = pos
            pos = child
        heap[pos] = var
        heap_pos[var] = pos

    def _heap_pop(self) -> int:
        """Remove and return the highest-activity variable."""
        heap = self._heap
        top = heap[0]
        self._heap_pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            self._heap_pos[last] = 0
            self._heap_sift_down(0)
        return top

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def ok(self) -> bool:
        """False if the clause database is already unsatisfiable at level 0."""
        return self._ok

    def add_cnf(self, cnf: CNF) -> List[int]:
        """Add all clauses of a :class:`CNF` and return their clause ids."""
        self.ensure_vars(cnf.num_vars)
        return [self.add_clause(clause) for clause in cnf.clauses]

    def add_clause(self, literals: Iterable[int]) -> int:
        """Add a clause; returns its clause id (usable for proof bookkeeping).

        Clauses may be added at any time between ``solve`` calls; the solver
        backtracks to level 0 automatically.
        """
        if self._trail_lim:
            self._cancel_until(0)
        clause = list(dict.fromkeys(literals))  # dedupe, keep order
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is not allowed in a clause")
            self.ensure_vars(var_of(lit))

        if any(-lit in clause for lit in clause):
            # tautology: satisfied by every assignment, never needs watching
            cid = len(self._clauses)
            self._clauses.append(clause)
            self._clause_learned.append(False)
            self.clause_proof.append(None)
            return cid

        return self._install_clause(clause)

    def add_clauses_mapped(
        self,
        clauses: Iterable[Sequence[int]],
        table: Sequence[int],
        guard: Optional[int] = None,
    ) -> Tuple[int, int]:
        """Bulk-add pre-normalized clauses remapped through a variable table.

        ``table[v]`` is the (positive) solver variable standing in for
        variable ``v`` of the clause set; literal ``l`` maps to ``table[l]``
        when positive and ``-table[-l]`` when negative.  This is the fast path
        used by :class:`repro.engines.encoding.FrameTemplate` to stamp a
        bit-blasted time-frame template into the solver with pure integer
        arithmetic.  The clauses must already be normalized (non-empty, no
        duplicate literals, no tautologies), so the per-clause Python overhead
        of :meth:`add_clause` (dedupe, tautology scan, per-literal variable
        growth) is skipped.  Returns the covering (start, end) clause-id range.

        When ``guard`` is given (a positive activation variable), every clause
        additionally receives the literal ``-guard``: the group only
        constrains the solver while ``guard`` is passed as an assumption, and
        is permanently disabled by :meth:`retire_activation`.
        """
        if self._trail_lim:
            self._cancel_until(0)
        top = 0
        for solver_var in table:
            if solver_var > top:
                top = solver_var
        if guard is not None and guard > top:
            top = guard
        self.ensure_vars(top)

        clause_db = self._clauses
        learned = self._clause_learned
        proofs = self.clause_proof
        lit_value = self._lit_value
        watches = self._watches
        start = len(clause_db)
        ok = self._ok
        neg_guard = -guard if guard is not None else None
        for template_clause in clauses:
            mapped = [table[l] if l > 0 else -table[-l] for l in template_clause]
            if neg_guard is not None:
                mapped.append(neg_guard)
            cid = len(clause_db)
            clause_db.append(mapped)
            learned.append(False)
            proofs.append(None)
            if not ok:
                continue
            if len(mapped) >= 2:
                # fast path: both watch candidates non-false (the common case,
                # template clauses mostly mention fresh internal variables)
                a = mapped[0]
                b = mapped[1]
                if (
                    lit_value[(a << 1) if a > 0 else (((-a) << 1) | 1)] >= 0
                    and lit_value[(b << 1) if b > 0 else (((-b) << 1) | 1)] >= 0
                ):
                    if len(mapped) == 2:
                        self._watch_binary(a, b, cid)
                    else:
                        index = ((-a) << 1) if a < 0 else ((a << 1) | 1)
                        if watches[index] is None:
                            watches[index] = [cid]
                        else:
                            watches[index].append(cid)
                        index = ((-b) << 1) if b < 0 else ((b << 1) | 1)
                        if watches[index] is None:
                            watches[index] = [cid]
                        else:
                            watches[index].append(cid)
                    continue
            self._finish_install(cid)
            ok = self._ok
        return start, len(clause_db)

    def add_fresh_clauses(self, clauses: Iterable[Sequence[int]], delta: int) -> Tuple[int, int]:
        """Bulk-add clauses whose variables are all freshly allocated.

        Every literal is shifted by ``delta`` (``l + delta`` positive,
        ``l - delta`` negative); the target variables must have just been
        allocated with :meth:`new_vars` and still be unassigned, and every
        clause must have at least two literals.  Under those guarantees the
        watched-literal invariant holds for the first two literals with no
        value checks at all — this is the hottest path of frame-template
        instantiation (the internal Tseitin gate clauses of a frame).
        """
        if self._trail_lim:
            self._cancel_until(0)
        clause_db = self._clauses
        watches = self._watches
        start = len(clause_db)
        mapped_all = [
            [l + delta if l > 0 else l - delta for l in template_clause]
            for template_clause in clauses
        ]
        clause_db.extend(mapped_all)
        count = len(mapped_all)
        self._clause_learned.extend([False] * count)
        self.clause_proof.extend([None] * count)
        if self._ok:
            bin_watches = self._bin_watches
            cid = start
            for mapped in mapped_all:
                a = mapped[0]
                b = mapped[1]
                if len(mapped) == 2:
                    index = ((-a) << 1) if a < 0 else ((a << 1) | 1)
                    if bin_watches[index] is None:
                        bin_watches[index] = [(b, cid)]
                    else:
                        bin_watches[index].append((b, cid))
                    index = ((-b) << 1) if b < 0 else ((b << 1) | 1)
                    if bin_watches[index] is None:
                        bin_watches[index] = [(a, cid)]
                    else:
                        bin_watches[index].append((a, cid))
                else:
                    index = ((-a) << 1) if a < 0 else ((a << 1) | 1)
                    if watches[index] is None:
                        watches[index] = [cid]
                    else:
                        watches[index].append(cid)
                    index = ((-b) << 1) if b < 0 else ((b << 1) | 1)
                    if watches[index] is None:
                        watches[index] = [cid]
                    else:
                        watches[index].append(cid)
                cid += 1
        return start, len(clause_db)

    def add_fresh_binary(
        self, pairs: Iterable[Sequence[int]], delta: int
    ) -> Tuple[int, int]:
        """Bulk-add fresh two-literal clauses shifted by ``delta``.

        The binary companion of :meth:`add_fresh_clauses`: the target
        variables must be freshly allocated and unassigned.  Registration
        goes straight into the binary watch-pair lists with no per-clause
        length dispatch — templates pre-split their gate clauses so this
        loop, the hottest part of frame stamping, stays branch-light.
        """
        if self._trail_lim:
            self._cancel_until(0)
        clause_db = self._clauses
        bin_watches = self._bin_watches
        start = len(clause_db)
        mapped_all = [
            [a + delta if a > 0 else a - delta, b + delta if b > 0 else b - delta]
            for a, b in pairs
        ]
        clause_db.extend(mapped_all)
        count = len(mapped_all)
        self._clause_learned.extend([False] * count)
        self.clause_proof.extend([None] * count)
        if self._ok:
            cid = start
            for a, b in mapped_all:
                index = ((-a) << 1) if a < 0 else ((a << 1) | 1)
                pair_list = bin_watches[index]
                if pair_list is None:
                    bin_watches[index] = [(b, cid)]
                else:
                    pair_list.append((b, cid))
                index = ((-b) << 1) if b < 0 else ((b << 1) | 1)
                pair_list = bin_watches[index]
                if pair_list is None:
                    bin_watches[index] = [(a, cid)]
                else:
                    pair_list.append((a, cid))
                cid += 1
        return start, len(clause_db)

    def _install_clause(self, clause: List[int]) -> int:
        """Install a normalized clause (deduped, non-tautological, vars allocated).

        The solver must be at decision level 0.  Shared by :meth:`add_clause`
        and :meth:`add_clauses_mapped`.
        """
        cid = len(self._clauses)
        self._clauses.append(clause)
        self._clause_learned.append(False)
        self.clause_proof.append(None)
        self._finish_install(cid)
        return cid

    def _finish_install(self, cid: int) -> None:
        """Set up watches/propagation for an already-appended original clause."""
        clause = self._clauses[cid]

        if not clause:
            self._ok = False
            if self.proof_logging:
                self.final_proof = ((cid,), ())
            return

        if not self._ok:
            return

        # Move non-false literals to the watch positions so that the
        # watched-literal invariant holds even for clauses containing
        # literals already falsified at level 0.
        non_false = [i for i, lit in enumerate(clause) if self._value(lit) is not False]
        if len(non_false) == 0:
            self._ok = False
            if self.proof_logging:
                self.final_proof = self._derive_empty_from_conflict(cid)
            return
        if len(non_false) == 1 or len(clause) == 1:
            unit_lit = clause[non_false[0]]
            if len(clause) >= 2:
                clause[0], clause[non_false[0]] = clause[non_false[0]], clause[0]
                self._watch_clause(cid)
            if self._value(unit_lit) is None:
                self._enqueue(unit_lit, cid)
                conflict = self._propagate()
                if conflict is not None:
                    self._ok = False
                    if self.proof_logging:
                        self.final_proof = self._derive_empty_from_conflict(conflict)
            return

        first, second = non_false[0], non_false[1]
        clause[0], clause[first] = clause[first], clause[0]
        if second == 0:
            second = first
        clause[1], clause[second] = clause[second], clause[1]
        self._watch_clause(cid)

    def clause_literals(self, cid: int) -> Tuple[int, ...]:
        """Return the literals of clause ``cid``."""
        return tuple(self._clauses[cid])

    def is_learned(self, cid: int) -> bool:
        """Return True if clause ``cid`` was learned by conflict analysis."""
        return self._clause_learned[cid]

    # ------------------------------------------------------------------
    # assignment helpers
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        value = self._lit_value[(lit << 1) if lit > 0 else (((-lit) << 1) | 1)]
        if value == 0:
            return None
        return value > 0

    def _enqueue(self, lit: int, reason: Optional[int]) -> None:
        var = lit if lit > 0 else -lit
        self._assign[var] = lit > 0
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        index = var << 1
        if lit > 0:
            self._lit_value[index] = 1
            self._lit_value[index | 1] = -1
        else:
            self._lit_value[index] = -1
            self._lit_value[index | 1] = 1
        self._trail.append(lit)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        lit_value = self._lit_value
        heap = self._heap
        heap_pos = self._heap_pos
        activity = self._activity
        assign = self._assign
        phase = self._phase
        reason = self._reason
        for lit in reversed(self._trail[limit:]):
            var = lit if lit > 0 else -lit
            phase[var] = bool(assign[var])  # phase saving
            assign[var] = None
            reason[var] = None
            index = var << 1
            lit_value[index] = 0
            lit_value[index | 1] = 0
            if heap_pos[var] < 0:
                # inlined heap insert + sift-up
                pos = len(heap)
                heap.append(var)
                value = activity[var]
                while pos > 0:
                    parent = (pos - 1) >> 1
                    parent_var = heap[parent]
                    if activity[parent_var] >= value:
                        break
                    heap[pos] = parent_var
                    heap_pos[parent_var] = pos
                    pos = parent
                heap[pos] = var
                heap_pos[var] = pos
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    # ------------------------------------------------------------------
    # watched literal propagation
    # ------------------------------------------------------------------
    def _watch_clause(self, cid: int) -> None:
        clause = self._clauses[cid]
        if len(clause) == 2:
            # binary clauses live in the dedicated pair lists; both literals
            # are always watched, so the registration never needs maintenance
            self._watch_binary(clause[0], clause[1], cid)
            return
        watches = self._watches
        lit = -clause[0]
        index = (lit << 1) if lit > 0 else (((-lit) << 1) | 1)
        if watches[index] is None:
            watches[index] = [cid]
        else:
            watches[index].append(cid)
        if len(clause) >= 2:
            lit = -clause[1]
            index = (lit << 1) if lit > 0 else (((-lit) << 1) | 1)
            if watches[index] is None:
                watches[index] = [cid]
            else:
                watches[index].append(cid)

    def _watch_binary(self, a: int, b: int, cid: int) -> None:
        """Register a two-literal clause in the binary watch lists."""
        bin_watches = self._bin_watches
        index = ((-a) << 1) if a < 0 else ((a << 1) | 1)
        if bin_watches[index] is None:
            bin_watches[index] = [(b, cid)]
        else:
            bin_watches[index].append((b, cid))
        index = ((-b) << 1) if b < 0 else ((b << 1) | 1)
        if bin_watches[index] is None:
            bin_watches[index] = [(a, cid)]
        else:
            bin_watches[index].append((a, cid))

    def _propagate(self) -> Optional[int]:
        """Propagate all enqueued literals; return a conflicting clause id or None."""
        trail = self._trail
        clauses = self._clauses
        watches = self._watches
        bin_watches = self._bin_watches
        lit_value = self._lit_value
        while self._queue_head < len(trail):
            lit = trail[self._queue_head]
            self._queue_head += 1
            self.stats.propagations += 1
            watch_index = (lit << 1) if lit > 0 else (((-lit) << 1) | 1)
            # binary fast path: each pair resolves with two list reads — the
            # other literal is either true (skip), false (conflict) or
            # unassigned (propagate); no watch moves, no clause scans
            pairs = bin_watches[watch_index]
            if pairs:
                for other, bin_cid in pairs:
                    value = lit_value[(other << 1) if other > 0 else (((-other) << 1) | 1)]
                    if value == 0:
                        self._enqueue(other, bin_cid)
                    elif value < 0:
                        return bin_cid
            watchers = watches[watch_index]
            if not watchers:
                continue
            new_watchers: List[int] = []
            conflict: Optional[int] = None
            i = 0
            n = len(watchers)
            false_lit = -lit
            while i < n:
                cid = watchers[i]
                i += 1
                clause = clauses[cid]
                if not clause:
                    # deleted by a DB reduction: drop it from this watch list
                    continue
                if len(clause) == 1:
                    new_watchers.append(cid)
                    only = clause[0]
                    if lit_value[(only << 1) if only > 0 else (((-only) << 1) | 1)] < 0:
                        new_watchers.extend(watchers[i:])
                        conflict = cid
                        break
                    continue
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                # now clause[1] == false_lit
                first = clause[0]
                first_value = lit_value[(first << 1) if first > 0 else (((-first) << 1) | 1)]
                if first_value > 0:
                    new_watchers.append(cid)
                    continue
                found = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    if lit_value[(other << 1) if other > 0 else (((-other) << 1) | 1)] >= 0:
                        clause[1], clause[k] = other, clause[1]
                        move_index = ((-other) << 1) if other < 0 else ((other << 1) | 1)
                        if watches[move_index] is None:
                            watches[move_index] = [cid]
                        else:
                            watches[move_index].append(cid)
                        found = True
                        break
                if found:
                    continue
                # clause is unit or conflicting
                new_watchers.append(cid)
                if first_value < 0:
                    new_watchers.extend(watchers[i:])
                    conflict = cid
                    break
                self._enqueue(first, cid)
            watches[watch_index] = new_watchers
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        activity = self._activity
        activity[var] += self._var_inc
        if activity[var] > 1e100:
            # rescale in place over exactly the allocated vars (the activity
            # list has one slot per variable); uniform scaling preserves the
            # heap order, so no re-heapify is needed
            self._activity = [a * 1e-100 for a in activity]
            self._var_inc *= 1e-100
        pos = self._heap_pos[var]
        if pos >= 0:
            self._heap_sift_up(pos)

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay

    def _bump_clause_activity(self, cid: int) -> None:
        """Bump a learned clause used as an antecedent in conflict analysis."""
        activity = self._learned_activity.get(cid)
        if activity is None:
            return
        activity += self._cla_inc
        self._learned_activity[cid] = activity
        if activity > 1e20:
            for other in self._learned_activity:
                self._learned_activity[other] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> Tuple[List[int], int, ProofChain]:
        """First-UIP conflict analysis.

        Returns ``(learned_clause, backtrack_level, proof_chain)`` where the
        learned clause has the asserting literal first and a literal from the
        backtrack level second (preserving the watched-literal invariant).
        Literals assigned at level 0 are kept in the learned clause so that
        the recorded resolution chain derives exactly the returned clause.
        """
        learned: List[int] = []
        seen = [False] * (self._num_vars + 1)
        counter = 0
        resolve_lit: Optional[int] = None
        clause_id = conflict
        current_level = self._decision_level()
        index = len(self._trail) - 1

        antecedents: List[int] = [conflict]
        pivots: List[int] = []
        self._bump_clause_activity(conflict)

        while True:
            for lit in self._clauses[clause_id]:
                var = var_of(lit)
                if seen[var]:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # next current-level literal to resolve, scanning the trail backwards
            while not seen[var_of(self._trail[index])]:
                index -= 1
            resolve_lit = self._trail[index]
            index -= 1
            counter -= 1
            if counter == 0:
                learned = [-resolve_lit] + learned
                break
            reason_id = self._reason[var_of(resolve_lit)]
            assert reason_id is not None, "non-UIP current-level literal must have a reason"
            clause_id = reason_id
            antecedents.append(reason_id)
            pivots.append(var_of(resolve_lit))
            self._bump_clause_activity(reason_id)

        if len(learned) > 1:
            learned = self._minimize(learned, antecedents, pivots)

        if len(learned) == 1:
            backtrack = 0
        else:
            # place a literal of the highest remaining level at position 1
            best = 1
            for i in range(2, len(learned)):
                if self._level[var_of(learned[i])] > self._level[var_of(learned[best])]:
                    best = i
            learned[1], learned[best] = learned[best], learned[1]
            backtrack = self._level[var_of(learned[1])]
        return learned, backtrack, (tuple(antecedents), tuple(pivots))

    def _minimize(
        self, learned: List[int], antecedents: List[int], pivots: List[int]
    ) -> List[int]:
        """Self-subsuming resolution over the freshly learned clause.

        A literal is redundant when its reason clause's remaining literals are
        all already in the clause: resolving the two removes the literal and
        introduces nothing new.  Each removal is one more recorded resolution
        step, so the proof chain still derives exactly the returned clause
        (removals are checked against the clause *as minimized so far* — a
        literal whose reason mentions an already-removed literal is kept).
        The first literal (the asserting UIP) is never touched.
        """
        remaining = set(learned)
        clauses = self._clauses
        reasons = self._reason
        kept = [learned[0]]
        removed = 0
        for lit in learned[1:]:
            var = lit if lit > 0 else -lit
            reason_id = reasons[var]
            removable = False
            if reason_id is not None:
                removable = True
                neg_lit = -lit
                for other in clauses[reason_id]:
                    if other != neg_lit and other not in remaining:
                        removable = False
                        break
            if removable:
                remaining.discard(lit)
                antecedents.append(reason_id)
                pivots.append(var)
                self._bump_clause_activity(reason_id)
                removed += 1
            else:
                kept.append(lit)
        if removed:
            self.stats.minimized_literals += removed
            return kept
        return learned

    def _derive_empty_from_conflict(self, conflict: int) -> ProofChain:
        """Build the resolution chain refuting a level-0 conflict.

        Every literal of the conflicting clause is false at level 0 and has a
        reason clause; resolving them away in reverse assignment order yields
        the empty clause.
        """
        position = {var_of(lit): i for i, lit in enumerate(self._trail)}
        current: Set[int] = set(self._clauses[conflict])
        antecedents: List[int] = [conflict]
        pivots: List[int] = []
        guard = 0
        limit = 10 * (len(self._trail) + len(self._clauses) + 10)
        while current:
            guard += 1
            if guard > limit:  # pragma: no cover - defensive
                break
            lit = max(current, key=lambda l: position.get(var_of(l), -1))
            var = var_of(lit)
            reason_id = self._reason[var]
            if reason_id is None:  # pragma: no cover - defensive
                break
            current.discard(lit)
            for other in self._clauses[reason_id]:
                if var_of(other) != var:
                    current.add(other)
            antecedents.append(reason_id)
            pivots.append(var)
        return tuple(antecedents), tuple(pivots)

    def _record_learned(self, clause: List[int], proof_chain: ProofChain, lbd: int = 1) -> int:
        cid = len(self._clauses)
        self._clauses.append(list(clause))
        self._clause_learned.append(True)
        self.clause_proof.append(proof_chain if self.proof_logging else None)
        self.stats.learned_clauses += 1
        self._learned_activity[cid] = self._cla_inc
        self._learned_lbd[cid] = lbd
        if len(clause) >= 2:
            self._watch_clause(cid)
        return cid

    # ------------------------------------------------------------------
    # learned-clause database reduction (clause GC)
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        """Delete the less useful half of the removable learned clauses.

        Clauses are ranked Glucose-style: higher literal-block distance first,
        then lower activity.  *Glue* clauses (LBD <= 2), binary/unit clauses
        and clauses currently locked as the reason of an assignment are never
        deleted.  Deletion empties the clause in place (clause ids stay
        stable for the proof/interpolation machinery); watch lists drop the
        dead entries lazily during propagation.
        """
        locked = set()
        for lit in self._trail:
            reason = self._reason[var_of(lit)]
            if reason is not None:
                locked.add(reason)
        clauses = self._clauses
        candidates = [
            cid
            for cid, lbd in self._learned_lbd.items()
            if lbd > 2 and len(clauses[cid]) > 2 and cid not in locked
        ]
        self.stats.reduce_db += 1
        self._next_reduce = int(self._next_reduce * self.reduce_growth) + 1
        if not candidates:
            return
        activity = self._learned_activity
        lbds = self._learned_lbd
        candidates.sort(key=lambda cid: (-lbds[cid], activity[cid]))
        for cid in candidates[: len(candidates) // 2]:
            clauses[cid] = []
            del activity[cid]
            del lbds[cid]
            self.stats.deleted_clauses += 1

    # ------------------------------------------------------------------
    # session refocus
    # ------------------------------------------------------------------
    def reset_activity(self) -> None:
        """Zero every VSIDS activity and restart the bump increment.

        Long-lived sessions call this when the query changes *shape* — a new
        time frame enters the database — so the search refocuses on the new
        logic instead of following activity accumulated by earlier bounds
        (which measurably inflates conflicts on deep incremental runs).
        Saved phases and learned clauses are kept.  All activities become
        equal, so the heap property holds trivially and no re-heapify is
        needed.
        """
        self._activity = [0.0] * (self._num_vars + 1)
        self._var_inc = 1.0

    # ------------------------------------------------------------------
    # activation-literal retraction (persistent sessions)
    # ------------------------------------------------------------------
    def retire_activation(self, act: int) -> int:
        """Permanently disable the clauses guarded by activation ``act``.

        Adds the unit clause ``[-act]`` (so every clause carrying the
        ``-act`` guard literal is satisfied forever) and garbage-collects the
        learned clauses that recorded a dependency on the activation — those
        containing ``-act`` — since they can never propagate again.  Learned
        GC is skipped under proof logging (retired clauses may be antecedents
        of a later refutation) and for binary clauses (their watch pairs are
        immutable).  Returns the clause id of the retiring unit.
        """
        self.stats.retired_activations += 1
        cid = self.add_clause([-act])
        if not self.proof_logging:
            self._collect_retired(-act)
        return cid

    def _collect_retired(self, guard_lit: int) -> None:
        """Delete learned clauses containing ``guard_lit`` (now satisfied forever)."""
        locked = set()
        for lit in self._trail:
            reason = self._reason[var_of(lit)]
            if reason is not None:
                locked.add(reason)
        clauses = self._clauses
        activity = self._learned_activity
        lbds = self._learned_lbd
        retired = 0
        for cid in list(lbds):
            clause = clauses[cid]
            if len(clause) > 2 and cid not in locked and guard_lit in clause:
                clauses[cid] = []
                del activity[cid]
                del lbds[cid]
                retired += 1
        self.stats.retired_clauses += retired

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> Optional[int]:
        # inlined heap pops: assigned variables surfacing at the root are
        # discarded until an unassigned one appears (they re-enter the heap
        # on backtracking); hoisting the lists keeps this hot loop tight
        heap = self._heap
        heap_pos = self._heap_pos
        activity = self._activity
        assign = self._assign
        while heap:
            top = heap[0]
            heap_pos[top] = -1
            last = heap.pop()
            size = len(heap)
            if size:
                # sift the displaced leaf down from the root
                value = activity[last]
                pos = 0
                child = 1
                while child < size:
                    right = child + 1
                    if right < size and activity[heap[right]] > activity[heap[child]]:
                        child = right
                    child_var = heap[child]
                    if value >= activity[child_var]:
                        break
                    heap[pos] = child_var
                    heap_pos[child_var] = pos
                    pos = child
                    child = 2 * pos + 1
                heap[pos] = last
                heap_pos[last] = pos
            if assign[top] is None:
                return top
        # heap exhausted: fall back to a scan (covers vars never re-inserted)
        for var in range(1, self._num_vars + 1):
            if assign[var] is None:
                return var
        return None

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Arm a cooperative absolute ``time.monotonic()`` deadline.

        Unlike the ``deadline`` argument of :meth:`solve` (which is polled
        only when conflicts occur and makes the call return ``UNKNOWN``),
        the armed deadline is checked in the decide loop as well — every
        :data:`CHECK_INTERVAL` decisions — and expiry raises the catchable
        :class:`SolverInterrupted`, so deep conflict-free solves are
        interrupted too.  ``None`` disarms.
        """
        self._deadline = deadline

    def _checkpoint(self, deadline: Optional[float]) -> bool:
        """Cooperative interruption point, reached periodically by the search.

        Runs the process-wide :attr:`fault_hook` (chaos harness) if one is
        installed, raises :class:`SolverInterrupted` when the armed instance
        deadline has expired, and returns True when the per-call ``deadline``
        has (the caller then returns ``UNKNOWN``).
        """
        hook = Solver.fault_hook
        if hook is not None:
            hook(self)
        if self._deadline is not None and time.monotonic() > self._deadline:
            self._cancel_until(0)
            raise SolverInterrupted(
                f"solver deadline exceeded after {self.stats.conflicts} conflicts, "
                f"{self.stats.decisions} decisions"
            )
        return deadline is not None and time.monotonic() > deadline

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> str:
        """Solve the current clause database under the given assumptions.

        Returns one of :data:`SolverResult.SAT`, :data:`SolverResult.UNSAT`
        or :data:`SolverResult.UNKNOWN` (when ``conflict_limit`` or the
        wall-clock ``deadline`` from ``time.monotonic()`` is exceeded).
        A deadline armed with :meth:`set_deadline` is additionally checked
        every :data:`CHECK_INTERVAL` decisions and raises
        :class:`SolverInterrupted` instead.
        On SAT, :meth:`model_value` reports the satisfying assignment.  On
        UNSAT under assumptions, :attr:`failed_assumptions` holds a subset of
        the assumptions sufficient for unsatisfiability.
        """
        self.failed_assumptions = set()
        self.assumption_core_chain = None
        self.assumption_core = ()
        self._model = {}
        if not self._ok:
            return SolverResult.UNSAT
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            if self.proof_logging:
                self.final_proof = self._derive_empty_from_conflict(conflict)
            return SolverResult.UNSAT

        assumptions = list(assumptions)
        for lit in assumptions:
            self.ensure_vars(var_of(lit))
        conflicts_since_restart = 0
        restart_index = 1
        restart_limit = 64 * luby(restart_index)
        total_conflicts = 0
        decisions_since_check = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                total_conflicts += 1
                if self._decision_level() == 0:
                    self._ok = False
                    if self.proof_logging:
                        self.final_proof = self._derive_empty_from_conflict(conflict)
                    return SolverResult.UNSAT
                if conflict_limit is not None and total_conflicts > conflict_limit:
                    self._cancel_until(0)
                    return SolverResult.UNKNOWN
                if total_conflicts % 64 == 0 and self._checkpoint(deadline):
                    self._cancel_until(0)
                    return SolverResult.UNKNOWN
                learned, backtrack, chain = self._analyze(conflict)
                # literal-block distance, while the conflict levels are live
                lbd = len({self._level[var_of(lit)] for lit in learned})
                self._decay_activities()
                self._cancel_until(backtrack)
                cid = self._record_learned(learned, chain, lbd)
                if self._value(learned[0]) is None:
                    self._enqueue(learned[0], cid)
                if (
                    not self.proof_logging
                    and len(self._learned_activity) >= self._next_reduce
                ):
                    self._reduce_db()
                continue

            if conflicts_since_restart >= restart_limit:
                self.stats.restarts += 1
                conflicts_since_restart = 0
                restart_index += 1
                restart_limit = 64 * luby(restart_index)
                self._cancel_until(min(len(assumptions), self._decision_level()))
                continue

            # apply assumptions as pseudo-decisions
            if self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                value = self._value(lit)
                if value is True:
                    self._new_decision_level()
                    continue
                if value is False:
                    self._analyze_final_lit(lit, assumptions)
                    self._cancel_until(0)
                    return SolverResult.UNSAT
                self._new_decision_level()
                self._enqueue(lit, None)
                continue

            var = self._pick_branch_var()
            if var is None:
                self._model = {
                    v: bool(self._assign[v]) for v in range(1, self._num_vars + 1)
                }
                self._check_model()
                self._cancel_until(0)
                return SolverResult.SAT
            self.stats.decisions += 1
            decisions_since_check += 1
            if decisions_since_check >= self.CHECK_INTERVAL:
                decisions_since_check = 0
                if self._checkpoint(deadline):
                    self._cancel_until(0)
                    return SolverResult.UNKNOWN
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, self._decision_level() + 1
            )
            self._new_decision_level()
            phase = self._phase[var]
            self._enqueue(var if phase else -var, None)

    def _check_model(self) -> None:
        """Sanity-check the model against every clause (fails loudly on bugs)."""
        for clause in self._clauses:
            if not clause:
                continue
            if not any(self._model_lit(lit) for lit in clause):
                raise AssertionError("internal error: model does not satisfy clause")

    def _model_lit(self, lit: int) -> bool:
        value = self._model.get(var_of(lit), False)
        return value if lit > 0 else not value

    def _analyze_final_lit(self, failed_lit: int, assumptions: Sequence[int]) -> None:
        """Compute failed assumptions when an assumption literal is already false."""
        if self.proof_logging and self._record_assumption_core(failed_lit):
            return
        assumption_vars = {var_of(a) for a in assumptions}
        failed: Set[int] = {failed_lit}
        seen: Set[int] = set()
        queue: List[int] = [-failed_lit]
        while queue:
            lit = queue.pop()
            var = var_of(lit)
            if var in seen:
                continue
            seen.add(var)
            if self._level[var] == 0:
                continue
            reason_id = self._reason[var]
            if reason_id is None:
                if var in assumption_vars:
                    failed.add(self._trail_literal(var))
            else:
                queue.extend(
                    other for other in self._clauses[reason_id] if var_of(other) != var
                )
        self.failed_assumptions = failed

    def _record_assumption_core(self, failed_lit: int) -> bool:
        """Derive a clause over negated assumptions refuting the assumptions.

        ``failed_lit`` is an assumption whose negation is implied by the
        clause database under the earlier assumptions.  Starting from the
        reason clause that propagated ``-failed_lit``, every false literal
        with a reason is resolved away in reverse assignment order; what
        remains are negations of assumption decisions (which have no reason).
        The chain and the derived clause are stored on
        :attr:`assumption_core_chain` / :attr:`assumption_core`, and
        :attr:`failed_assumptions` is the negation of the derived clause.
        Returns False (falling back to the reachability analysis) when the
        propagated literal has no reason — i.e. the assumptions are directly
        contradictory.
        """
        root_reason = self._reason[var_of(failed_lit)]
        if root_reason is None:
            return False
        position = {var_of(lit): i for i, lit in enumerate(self._trail)}
        current: Set[int] = set(self._clauses[root_reason])
        antecedents: List[int] = [root_reason]
        pivots: List[int] = []
        reasons = self._reason
        guard = 0
        limit = 10 * (len(self._trail) + len(self._clauses) + 10)
        while True:
            guard += 1
            if guard > limit:  # pragma: no cover - defensive
                return False
            best: Optional[int] = None
            best_position = -1
            for lit in current:
                if lit == -failed_lit:
                    continue
                var = var_of(lit)
                if reasons[var] is None:
                    continue  # an assumption decision: keep its negation
                pos = position.get(var, -1)
                if pos > best_position:
                    best_position = pos
                    best = lit
            if best is None:
                break
            var = var_of(best)
            reason_id = reasons[var]
            current.discard(best)
            for other in self._clauses[reason_id]:
                if var_of(other) != var:
                    current.add(other)
            antecedents.append(reason_id)
            pivots.append(var)
        self.assumption_core_chain = (tuple(antecedents), tuple(pivots))
        self.assumption_core = tuple(current)
        self.failed_assumptions = {-lit for lit in current}
        return True

    def _trail_literal(self, var: int) -> int:
        return var if self._assign[var] else -var

    # ------------------------------------------------------------------
    # model access
    # ------------------------------------------------------------------
    def model_value(self, lit: int) -> bool:
        """Return the value of ``lit`` in the last satisfying assignment."""
        if not self._model:
            raise RuntimeError("no model available (last result was not SAT)")
        value = self._model.get(var_of(lit), False)
        return value if lit > 0 else not value

    def model(self) -> Dict[int, bool]:
        """Return the last satisfying assignment as ``{var: bool}``."""
        if not self._model:
            raise RuntimeError("no model available (last result was not SAT)")
        return dict(self._model)
