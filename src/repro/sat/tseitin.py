"""Tseitin encoding of propositional structure into CNF clauses.

The encoder produces fresh variables for gate outputs and emits the standard
defining clauses.  It is used by the bit-blaster (:mod:`repro.smt`) and by the
engines when they need to assert arbitrary propositional formulas (for
instance, the negation of a candidate inductive invariant).

Literals use the DIMACS convention of :mod:`repro.sat.cnf`.  The special
constant literals are handled through a dedicated always-true variable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class TseitinEncoder:
    """Builds CNF for AND/OR/XOR/ITE/equality gates over literals.

    The encoder owns variable allocation: either wrap an existing
    :class:`repro.sat.cnf.CNF` or a :class:`repro.sat.solver.Solver` — any
    object with ``new_var()`` and ``add_clause(iterable)``.
    """

    def __init__(self, sink) -> None:
        self._sink = sink
        self._true_lit: Optional[int] = None
        # structural hashing of gates: (op, args) -> output literal
        self._cache: Dict[Tuple, int] = {}

    # -- variable / constant management --------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable in the underlying sink."""
        return self._sink.new_var()

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause directly to the underlying sink."""
        self._sink.add_clause(list(literals))

    @property
    def true_lit(self) -> int:
        """A literal constrained to be true (allocated lazily)."""
        if self._true_lit is None:
            var = self.new_var()
            self._sink.add_clause([var])
            self._true_lit = var
        return self._true_lit

    @property
    def false_lit(self) -> int:
        """A literal constrained to be false."""
        return -self.true_lit

    @property
    def true_var(self) -> Optional[int]:
        """The constant-true variable if it has been allocated, else None.

        Unlike :attr:`true_lit` this never allocates; template capture uses it
        to tell the constant apart from internal gate variables.
        """
        return self._true_lit

    def const_lit(self, value: bool) -> int:
        """Return the constant literal for ``value``."""
        return self.true_lit if value else self.false_lit

    # -- gates -----------------------------------------------------------
    def and_gate(self, literals: Sequence[int]) -> int:
        """Return a literal equivalent to the conjunction of ``literals``."""
        literals = [lit for lit in literals]
        if not literals:
            return self.true_lit
        if len(literals) == 1:
            return literals[0]
        key = ("and", tuple(sorted(literals)))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        out = self.new_var()
        for lit in literals:
            self._sink.add_clause([-out, lit])
        self._sink.add_clause([out] + [-lit for lit in literals])
        self._cache[key] = out
        return out

    def or_gate(self, literals: Sequence[int]) -> int:
        """Return a literal equivalent to the disjunction of ``literals``."""
        return -self.and_gate([-lit for lit in literals])

    def xor_gate(self, a: int, b: int) -> int:
        """Return a literal equivalent to ``a xor b``."""
        key = ("xor", tuple(sorted((a, b))))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        out = self.new_var()
        self._sink.add_clause([-out, a, b])
        self._sink.add_clause([-out, -a, -b])
        self._sink.add_clause([out, -a, b])
        self._sink.add_clause([out, a, -b])
        self._cache[key] = out
        return out

    def xnor_gate(self, a: int, b: int) -> int:
        """Return a literal equivalent to ``a == b``."""
        return -self.xor_gate(a, b)

    def ite_gate(self, cond: int, then_lit: int, else_lit: int) -> int:
        """Return a literal equivalent to ``cond ? then_lit : else_lit``."""
        key = ("ite", cond, then_lit, else_lit)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        out = self.new_var()
        self._sink.add_clause([-cond, -then_lit, out])
        self._sink.add_clause([-cond, then_lit, -out])
        self._sink.add_clause([cond, -else_lit, out])
        self._sink.add_clause([cond, else_lit, -out])
        self._cache[key] = out
        return out

    def implies_gate(self, a: int, b: int) -> int:
        """Return a literal equivalent to ``a -> b``."""
        return self.or_gate([-a, b])

    # -- adders used by the word-level bit-blaster -----------------------
    def full_adder(self, a: int, b: int, carry_in: int) -> Tuple[int, int]:
        """Return ``(sum, carry_out)`` literals of a full adder."""
        axb = self.xor_gate(a, b)
        total = self.xor_gate(axb, carry_in)
        carry = self.or_gate(
            [self.and_gate([a, b]), self.and_gate([axb, carry_in])]
        )
        return total, carry

    # -- assertions -------------------------------------------------------
    def assert_lit(self, lit: int) -> None:
        """Assert that ``lit`` is true (adds a unit clause)."""
        self._sink.add_clause([lit])

    def assert_equal(self, a: int, b: int) -> None:
        """Assert that two literals are equivalent."""
        self._sink.add_clause([-a, b])
        self._sink.add_clause([a, -b])


def equal_vectors(encoder: TseitinEncoder, a: Sequence[int], b: Sequence[int]) -> int:
    """Return a literal true iff the two literal vectors are bit-wise equal."""
    if len(a) != len(b):
        raise ValueError("vector lengths differ")
    bits = [encoder.xnor_gate(x, y) for x, y in zip(a, b)]
    return encoder.and_gate(bits)


def at_most_one(encoder: TseitinEncoder, literals: Sequence[int]) -> None:
    """Add pairwise at-most-one constraints over ``literals``."""
    lits = list(literals)
    for i in range(len(lits)):
        for j in range(i + 1, len(lits)):
            encoder.add_clause([-lits[i], -lits[j]])
