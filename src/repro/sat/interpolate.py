"""Craig interpolation from resolution proofs (McMillan's system).

Given an unsatisfiable CNF partitioned into an *A* part and a *B* part, and
the resolution proof recorded by :class:`repro.sat.solver.Solver` (constructed
with ``proof=True``), the :class:`Interpolator` computes a propositional
formula ``I`` over the shared variables such that

* ``A`` implies ``I``,
* ``I`` and ``B`` are jointly unsatisfiable, and
* every variable of ``I`` occurs both in ``A`` and in ``B``.

The construction follows McMillan (CAV 2003): partial interpolants are
attached to every clause of the proof —

* an original clause of A gets the disjunction of its literals whose variable
  also occurs in B (its *global* literals),
* an original clause of B gets *true*,
* a resolvent on pivot ``v`` combines the partial interpolants with *or* when
  ``v`` is local to A and with *and* otherwise.

The partial interpolant of the empty clause is the interpolant of (A, B).

Interpolant formulas are represented as light-weight :class:`ItpNode` DAGs so
the engines can either evaluate them, rename their variables to another time
frame, or re-encode them into CNF/AIG form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sat.cnf import var_of
from repro.sat.solver import Solver


@dataclass(frozen=True)
class ItpNode:
    """A node of an interpolant formula.

    ``kind`` is one of ``"const"``, ``"lit"``, ``"and"``, ``"or"``.
    For ``const`` the payload is ``value``; for ``lit`` it is ``lit`` (a
    DIMACS literal); for the connectives it is ``args``.
    """

    kind: str
    value: bool = False
    lit: int = 0
    args: Tuple["ItpNode", ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "const":
            return "T" if self.value else "F"
        if self.kind == "lit":
            return str(self.lit)
        joiner = " & " if self.kind == "and" else " | "
        return "(" + joiner.join(repr(a) for a in self.args) + ")"


_TRUE = ItpNode("const", value=True)
_FALSE = ItpNode("const", value=False)


def itp_const(value: bool) -> ItpNode:
    """Return the constant interpolant node."""
    return _TRUE if value else _FALSE


def itp_lit(lit: int) -> ItpNode:
    """Return an interpolant node for a single literal."""
    return ItpNode("lit", lit=lit)


def itp_or(args: Iterable[ItpNode]) -> ItpNode:
    """Disjunction with constant simplification."""
    flat: List[ItpNode] = []
    for arg in args:
        if arg.kind == "const":
            if arg.value:
                return _TRUE
            continue
        flat.append(arg)
    if not flat:
        return _FALSE
    if len(flat) == 1:
        return flat[0]
    return ItpNode("or", args=tuple(flat))


def itp_and(args: Iterable[ItpNode]) -> ItpNode:
    """Conjunction with constant simplification."""
    flat: List[ItpNode] = []
    for arg in args:
        if arg.kind == "const":
            if not arg.value:
                return _FALSE
            continue
        flat.append(arg)
    if not flat:
        return _TRUE
    if len(flat) == 1:
        return flat[0]
    return ItpNode("and", args=tuple(flat))


def itp_evaluate(node: ItpNode, assignment: Dict[int, bool]) -> bool:
    """Evaluate an interpolant under a variable assignment (missing vars = False)."""
    if node.kind == "const":
        return node.value
    if node.kind == "lit":
        value = assignment.get(var_of(node.lit), False)
        return value if node.lit > 0 else not value
    if node.kind == "and":
        return all(itp_evaluate(a, assignment) for a in node.args)
    return any(itp_evaluate(a, assignment) for a in node.args)


def itp_variables(node: ItpNode) -> Set[int]:
    """Return the set of variables occurring in the interpolant."""
    result: Set[int] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current.kind == "lit":
            result.add(var_of(current.lit))
        else:
            stack.extend(current.args)
    return result


def itp_size(node: ItpNode) -> int:
    """Return the number of nodes of the interpolant DAG."""
    seen: Set[int] = set()
    stack = [node]
    count = 0
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        count += 1
        stack.extend(current.args)
    return count


def itp_map_literals(node: ItpNode, mapping: Dict[int, int]) -> ItpNode:
    """Rename variables of an interpolant (``mapping`` maps var -> var)."""
    if node.kind == "const":
        return node
    if node.kind == "lit":
        var = var_of(node.lit)
        new_var = mapping.get(var, var)
        new_lit = new_var if node.lit > 0 else -new_var
        return ItpNode("lit", lit=new_lit)
    args = tuple(itp_map_literals(a, mapping) for a in node.args)
    return ItpNode(node.kind, args=args)


def itp_to_clauses(node: ItpNode, encoder) -> int:
    """Tseitin-encode an interpolant through ``encoder`` and return its output literal."""
    if node.kind == "const":
        return encoder.const_lit(node.value)
    if node.kind == "lit":
        return node.lit
    child_lits = [itp_to_clauses(a, encoder) for a in node.args]
    if node.kind == "and":
        return encoder.and_gate(child_lits)
    return encoder.or_gate(child_lits)


class Interpolator:
    """Extracts a Craig interpolant from a solver refutation.

    Usage::

        solver = Solver(proof=True)
        a_ids = [solver.add_clause(c) for c in a_clauses]
        b_ids = [solver.add_clause(c) for c in b_clauses]
        assert solver.solve() == SolverResult.UNSAT
        itp = Interpolator(solver, a_ids, b_ids).compute()

    Assumption-based (retractable) queries of a persistent solver session are
    supported through ``assumptions``: each entry ``(literal, origin)`` with
    origin ``"A"`` or ``"B"`` declares an assumption of the last solve as a
    virtual unit input clause of the corresponding partition.  When the solve
    returned UNSAT under assumptions (so the solver recorded
    :attr:`repro.sat.solver.Solver.assumption_core_chain` instead of a
    top-level refutation), the interpolator completes the refutation by
    resolving the derived core clause against those virtual units.
    """

    def __init__(
        self,
        solver: Solver,
        a_clause_ids: Sequence[int],
        b_clause_ids: Sequence[int],
        assumptions: Sequence[Tuple[int, str]] = (),
    ) -> None:
        if not solver.proof_logging:
            raise ValueError("interpolation requires a proof-logging solver")
        self._solver = solver
        self._a_ids: FrozenSet[int] = frozenset(a_clause_ids)
        self._b_ids: FrozenSet[int] = frozenset(b_clause_ids)
        self._assumptions: Dict[int, Tuple[int, str]] = {}
        for literal, origin in assumptions:
            if origin not in ("A", "B"):
                raise ValueError(f"assumption origin must be 'A' or 'B', got {origin!r}")
            self._assumptions[var_of(literal)] = (literal, origin)
        self._b_vars: Set[int] = set()
        for cid in b_clause_ids:
            for lit in solver.clause_literals(cid):
                self._b_vars.add(var_of(lit))
        self._a_vars: Set[int] = set()
        for cid in a_clause_ids:
            for lit in solver.clause_literals(cid):
                self._a_vars.add(var_of(lit))
        for literal, origin in assumptions:
            (self._a_vars if origin == "A" else self._b_vars).add(var_of(literal))
        self._partial: Dict[int, ItpNode] = {}

    # -- labelling -------------------------------------------------------
    def _is_global(self, var: int) -> bool:
        return var in self._b_vars

    def _clause_origin(self, cid: int) -> str:
        """Classify an original clause as belonging to the A or B partition.

        Clauses that were added by neither partition (e.g. auxiliary clauses
        added after the partitions were registered) default to B, which keeps
        the interpolant sound with respect to A.
        """
        if cid in self._a_ids:
            return "A"
        return "B"

    # -- main computation --------------------------------------------------
    def compute(self) -> ItpNode:
        """Return the interpolant for the recorded refutation."""
        final = self._solver.final_proof
        if final is not None:
            self._compute_partials(final[0])
            antecedents, pivots = final
            return self._resolve_chain(antecedents, pivots)
        core_chain = self._solver.assumption_core_chain
        if core_chain is not None and self._assumptions:
            self._compute_partials(core_chain[0])
            antecedents, pivots = core_chain
            current = self._resolve_chain(antecedents, pivots)
            # the derived clause holds negations of the failed assumptions:
            # resolving it against the virtual assumption unit clauses
            # completes the refutation of (A + A-units, B + B-units)
            for literal in self._solver.assumption_core:
                var = var_of(literal)
                entry = self._assumptions.get(var)
                if entry is None:
                    raise RuntimeError(
                        "assumption core mentions an undeclared assumption "
                        f"variable {var}"
                    )
                unit_lit, origin = entry
                if origin == "A":
                    unit_partial = (
                        itp_lit(unit_lit) if self._is_global(var) else _FALSE
                    )
                else:
                    unit_partial = _TRUE
                if self._is_global(var):
                    current = itp_and([current, unit_partial])
                else:
                    current = itp_or([current, unit_partial])
            return current
        raise RuntimeError("solver holds no refutation proof")

    def _compute_partials(self, roots: Sequence[int]) -> None:
        """Compute partial interpolants for every clause the proof reaches.

        Only the proof cone of ``roots`` is processed (a persistent session's
        clause database is far larger than any single refutation).  Every
        learned clause only references clauses with smaller ids, so a pass in
        ascending id order never recurses through the proof DAG.
        """
        needed: Set[int] = set()
        stack = list(roots)
        proofs = self._solver.clause_proof
        while stack:
            cid = stack.pop()
            if cid in needed:
                continue
            needed.add(cid)
            proof = proofs[cid]
            if proof is not None:
                stack.extend(proof[0])
        for cid in sorted(needed):
            proof = proofs[cid]
            if proof is None:
                self._partial[cid] = self._leaf_interpolant(cid)
            else:
                antecedents, pivots = proof
                self._partial[cid] = self._resolve_chain(antecedents, pivots)

    def _partial_interpolant(self, cid: int) -> ItpNode:
        cached = self._partial.get(cid)
        if cached is not None:
            return cached
        proof = self._solver.clause_proof[cid]
        if proof is None:
            result = self._leaf_interpolant(cid)
        else:
            antecedents, pivots = proof
            result = self._resolve_chain(antecedents, pivots)
        self._partial[cid] = result
        return result

    def _leaf_interpolant(self, cid: int) -> ItpNode:
        if self._clause_origin(cid) == "A":
            literals = self._solver.clause_literals(cid)
            shared = [itp_lit(lit) for lit in literals if self._is_global(var_of(lit))]
            return itp_or(shared)
        return _TRUE

    def _resolve_chain(
        self, antecedents: Tuple[int, ...], pivots: Tuple[int, ...]
    ) -> ItpNode:
        current = self._partial_interpolant(antecedents[0])
        for next_cid, pivot in zip(antecedents[1:], pivots):
            other = self._partial_interpolant(next_cid)
            if self._is_global(pivot):
                current = itp_and([current, other])
            else:
                current = itp_or([current, other])
        return current
