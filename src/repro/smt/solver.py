"""Bit-vector solver facade combining the bit-blaster and the CDCL solver.

The facade provides the incremental SMT-like interface the verification
engines are written against:

* :meth:`BVSolver.assert_expr` — add a word-level constraint permanently,
* :meth:`BVSolver.activation_literal` — add a constraint guarded by a fresh
  assumption literal (retractable, used by IC3/PDR frames),
* :meth:`BVSolver.check` — solve under optional word-level assumptions,
* :meth:`BVSolver.value` — read back values of expressions from the model.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exprs.nodes import Expr
from repro.obs import telemetry as _telemetry
from repro.sat.solver import Solver, SolverInterrupted, SolverResult
from repro.smt.bitblaster import BitBlaster


class BVResult:
    """Result constants mirroring :class:`repro.sat.solver.SolverResult`."""

    SAT = SolverResult.SAT
    UNSAT = SolverResult.UNSAT
    UNKNOWN = SolverResult.UNKNOWN


class BVSolver:
    """Incremental bit-vector solver built on bit-blasting.

    Parameters
    ----------
    proof:
        Enable resolution-proof logging in the underlying SAT solver so that
        interpolants can be extracted (see :class:`repro.sat.Interpolator`).
    """

    def __init__(self, proof: bool = False) -> None:
        self.solver = Solver(proof=proof)
        self.blaster = BitBlaster(self.solver)
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # constraint construction
    # ------------------------------------------------------------------
    def assert_expr(self, expr: Expr) -> Tuple[int, int]:
        """Assert that ``expr`` is true; returns the (start, end) clause-id range added."""
        start = self.solver.num_clauses
        self.blaster.assert_true(expr)
        return start, self.solver.num_clauses

    def assert_exprs(self, exprs: Iterable[Expr]) -> Tuple[int, int]:
        """Assert several expressions; returns the covering clause-id range."""
        start = self.solver.num_clauses
        for expr in exprs:
            self.blaster.assert_true(expr)
        return start, self.solver.num_clauses

    def literal_for(self, expr: Expr) -> int:
        """Return a SAT literal equivalent to the truth of ``expr``."""
        return self.blaster.blast_bool(expr)

    def activation_literal(self, expr: Expr) -> int:
        """Return a fresh assumption literal ``a`` with ``a -> expr`` asserted.

        Passing ``a`` as an assumption activates the constraint; omitting it
        (or passing ``-a``) retracts it.  This is the standard trick used by
        incremental IC3/PDR implementations for frame clauses.
        """
        activation = self.solver.new_var()
        target = self.blaster.blast_bool(expr)
        self.solver.add_clause([-activation, target])
        return activation

    def new_activation(self) -> int:
        """Allocate a fresh activation variable for a retractable group.

        Constraints attached with :meth:`assert_guarded` /
        :meth:`assert_exprs_guarded` under the returned variable are active
        while it is passed as an assumption to :meth:`check` and are
        permanently dropped by :meth:`retire`.
        """
        return self.solver.new_var()

    def assert_guarded(self, expr: Expr, activation: int) -> Tuple[int, int]:
        """Assert ``activation -> expr``; returns the clause-id range added.

        The range covers the Tseitin definition clauses of ``expr`` as well
        (they are retraction-safe: definitions over fresh gate variables never
        constrain the named bits on their own).
        """
        start = self.solver.num_clauses
        target = self.blaster.blast_bool(expr)
        self.solver.add_clause([-activation, target])
        return start, self.solver.num_clauses

    def assert_exprs_guarded(self, exprs: Iterable[Expr], activation: int) -> Tuple[int, int]:
        """Assert several expressions under one activation guard."""
        start = self.solver.num_clauses
        for expr in exprs:
            target = self.blaster.blast_bool(expr)
            self.solver.add_clause([-activation, target])
        return start, self.solver.num_clauses

    def retire(self, activation: int) -> int:
        """Permanently drop the constraints guarded by ``activation``.

        Returns the clause id of the retiring unit (``[-activation]``); the
        underlying solver also garbage-collects the learned clauses that
        depended on the guard (see
        :meth:`repro.sat.solver.Solver.retire_activation`).
        """
        return self.solver.retire_activation(activation)

    def new_bool(self) -> int:
        """Allocate a fresh free Boolean SAT variable."""
        return self.solver.new_var()

    @property
    def stats(self):
        """The underlying solver's :class:`repro.sat.solver.SolverStats`."""
        return self.solver.stats

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def set_deadline(self, deadline: Optional[float]) -> None:
        """Set an absolute ``time.monotonic()`` deadline for subsequent checks.

        The deadline is armed cooperatively in the underlying CDCL solver
        (:meth:`repro.sat.solver.Solver.set_deadline`), so it interrupts
        decision/propagation-heavy solves too, not just conflict-dense ones;
        an expired check reports :data:`BVResult.UNKNOWN`.
        """
        self._deadline = deadline
        self.solver.set_deadline(deadline)

    def check(
        self,
        assumptions: Sequence[int] = (),
        expr_assumptions: Sequence[Expr] = (),
        conflict_limit: Optional[int] = None,
    ) -> str:
        """Solve under SAT-literal and/or word-level assumptions.

        Each call is timed under a ``solver.check`` span when telemetry is
        recording, and the :class:`~repro.sat.solver.SolverStats` deltas it
        produced (conflicts, propagations, decisions, ...) are promoted to
        ``solver.*`` counters — at the call boundary, never inside the CDCL
        loops, so the solver hot path is untouched.
        """
        literal_assumptions = list(assumptions)
        for expr in expr_assumptions:
            literal_assumptions.append(self.blaster.blast_bool(expr))
        if _telemetry.get_recorder() is None:
            try:
                return self.solver.solve(
                    assumptions=literal_assumptions,
                    conflict_limit=conflict_limit,
                    deadline=self._deadline,
                )
            except SolverInterrupted:
                # the engines treat an expired budget as UNKNOWN and convert
                # it to their TIMEOUT verdict; the solver backtracked to
                # level 0 before raising, so it stays usable
                return SolverResult.UNKNOWN
        stats_before = self.solver.stats.as_dict()
        with _telemetry.span(
            "solver.check",
            assumptions=len(literal_assumptions),
            clauses=self.solver.num_clauses,
        ) as check_span:
            try:
                result = self.solver.solve(
                    assumptions=literal_assumptions,
                    conflict_limit=conflict_limit,
                    deadline=self._deadline,
                )
            except SolverInterrupted:
                result = SolverResult.UNKNOWN
            check_span.set_outcome(result)
            stats_after = self.solver.stats.as_dict()
            _telemetry.add_counters(
                {
                    name: stats_after[name] - stats_before.get(name, 0)
                    for name in stats_after
                    if isinstance(stats_after[name], (int, float))
                },
                prefix="solver.",
            )
            _telemetry.counter("solver.checks")
            _telemetry.counter(f"solver.result.{result}")
        return result

    def check_expr(self, expr: Expr, conflict_limit: Optional[int] = None) -> str:
        """Check satisfiability of the current constraints plus ``expr``."""
        return self.check(expr_assumptions=[expr], conflict_limit=conflict_limit)

    # ------------------------------------------------------------------
    # model extraction
    # ------------------------------------------------------------------
    def value(self, name: str, width: int) -> int:
        """Return the model value of variable ``name``."""
        return self.blaster.model_value(self.solver, name, width)

    def value_of_expr(self, expr: Expr) -> int:
        """Return the model value of an arbitrary expression.

        The expression must already have been blasted as part of an assertion
        or assumption (otherwise its fresh encoding would be unconstrained).
        """
        bits = self.blaster.blast(expr)
        value = 0
        for index, lit in enumerate(bits):
            if self._lit_value(lit):
                value |= 1 << index
        return value

    def _lit_value(self, lit: int) -> bool:
        if lit > 0:
            return self.solver.model_value(lit)
        return not self.solver.model_value(-lit)

    def model_of_vars(self, widths: Dict[str, int]) -> Dict[str, int]:
        """Return model values for all the given variables (name -> width map)."""
        return {name: self.value(name, width) for name, width in widths.items()}

    @property
    def failed_assumptions(self):
        """Failed assumption literals of the last UNSAT check."""
        return self.solver.failed_assumptions
