"""Bit-blasting of word-level expressions into CNF.

Each :class:`repro.exprs.Expr` is translated to a vector of SAT literals
(least-significant bit first).  Word-level operators are expanded into
propositional gate networks through a :class:`repro.sat.tseitin.TseitinEncoder`.
This is the same flattening approach taken by the SAT back-ends of CBMC and
EBMC, which the paper relies on for bit-precise reasoning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exprs.nodes import Const, Expr, Op, Var
from repro.sat.tseitin import TseitinEncoder


class BitBlaster:
    """Translates word-level expressions to literal vectors over a SAT sink.

    The sink must provide ``new_var()`` and ``add_clause()`` (both
    :class:`repro.sat.cnf.CNF` and :class:`repro.sat.solver.Solver` do).

    Variable bits are allocated once per variable name and reused, so that two
    expressions mentioning the same variable constrain the same SAT variables.
    Gate-level structural hashing lives in the Tseitin encoder; it can be
    reset with :meth:`clear_cache` to create a sharing barrier (needed when a
    clause partition for interpolation must only share variable bits).
    """

    def __init__(self, sink) -> None:
        self._encoder = TseitinEncoder(sink)
        self._var_bits: Dict[str, List[int]] = {}
        self._expr_cache: Dict[Expr, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # variable and constant handling
    # ------------------------------------------------------------------
    @property
    def encoder(self) -> TseitinEncoder:
        """The underlying Tseitin encoder."""
        return self._encoder

    @property
    def true_lit(self) -> int:
        """The literal constrained to true."""
        return self._encoder.true_lit

    def clear_cache(self) -> None:
        """Drop gate and expression caches, keeping variable-bit allocations.

        After the call, newly blasted expressions will not share internal
        Tseitin variables with previously blasted ones; only named variable
        bits remain common.  Interpolation-based engines use this to ensure
        the A/B partitions only share state-variable bits.
        """
        true_lit = self._encoder._true_lit
        self._encoder._cache = {}
        self._encoder._true_lit = true_lit
        self._expr_cache = {}

    def bits_of_var(self, name: str, width: int) -> List[int]:
        """Return (allocating if necessary) the literal vector of a variable."""
        bits = self._var_bits.get(name)
        if bits is None:
            bits = [self._encoder.new_var() for _ in range(width)]
            self._var_bits[name] = bits
        if len(bits) != width:
            raise ValueError(
                f"variable {name!r} blasted with width {len(bits)}, requested {width}"
            )
        return bits

    def has_var(self, name: str) -> bool:
        """Return True if variable bits have already been allocated for ``name``."""
        return name in self._var_bits

    def var_names(self) -> List[str]:
        """Return all variable names with allocated bits."""
        return list(self._var_bits)

    def lookup_bit(self, lit: int) -> Optional[Tuple[str, int, bool]]:
        """Map a SAT literal back to ``(variable name, bit index, positive?)``.

        Returns None for literals that are internal gate outputs.
        """
        var = abs(lit)
        for name, bits in self._var_bits.items():
            if var in bits:
                return name, bits.index(var), lit > 0
        return None

    def bit_map(self) -> Dict[int, Tuple[str, int]]:
        """Return a map from SAT variable to (variable name, bit index)."""
        result: Dict[int, Tuple[str, int]] = {}
        for name, bits in self._var_bits.items():
            for index, bit_var in enumerate(bits):
                result[bit_var] = (name, index)
        return result

    def var_bit_table(self) -> Dict[str, Tuple[int, ...]]:
        """Return the full symbol table: variable name -> its SAT bit variables.

        Bits are LSB first, exactly as allocated by :meth:`bits_of_var`.  The
        frame-template capture in :mod:`repro.engines.encoding` uses this to
        classify every blasted variable as a current-state, next-state or
        input bit; everything not listed here (and not :attr:`true_var`) is an
        internal Tseitin gate output.
        """
        return {name: tuple(bits) for name, bits in self._var_bits.items()}

    @property
    def true_var(self) -> Optional[int]:
        """The constant-true SAT variable, or None if it was never needed."""
        return self._encoder.true_var

    def const_bits(self, value: int, width: int) -> List[int]:
        """Return constant literals for ``value`` over ``width`` bits."""
        return [
            self._encoder.const_lit(bool((value >> i) & 1)) for i in range(width)
        ]

    # ------------------------------------------------------------------
    # main entry points
    # ------------------------------------------------------------------
    def blast(self, expr: Expr) -> List[int]:
        """Return the literal vector (LSB first) encoding ``expr``."""
        cached = self._expr_cache.get(expr)
        if cached is not None:
            return list(cached)
        result = self._blast_node(expr)
        if len(result) != expr.width:
            raise AssertionError(
                f"bit-blasting width mismatch for {expr!r}: "
                f"{len(result)} vs {expr.width}"
            )
        self._expr_cache[expr] = tuple(result)
        return list(result)

    def blast_bool(self, expr: Expr) -> int:
        """Return a single literal that is true iff ``expr`` is non-zero."""
        bits = self.blast(expr)
        if len(bits) == 1:
            return bits[0]
        return self._encoder.or_gate(bits)

    def assert_true(self, expr: Expr) -> None:
        """Assert that ``expr`` evaluates to a non-zero (true) value."""
        self._encoder.assert_lit(self.blast_bool(expr))

    def assert_false(self, expr: Expr) -> None:
        """Assert that ``expr`` evaluates to zero (false)."""
        self._encoder.assert_lit(-self.blast_bool(expr))

    def model_value(self, solver, name: str, width: int) -> int:
        """Read back the value of a variable from a satisfying assignment."""
        bits = self.bits_of_var(name, width)
        value = 0
        for index, lit in enumerate(bits):
            if solver.model_value(lit):
                value |= 1 << index
        return value

    # ------------------------------------------------------------------
    # node translation
    # ------------------------------------------------------------------
    def _blast_node(self, expr: Expr) -> List[int]:
        if isinstance(expr, Const):
            return self.const_bits(expr.value, expr.width)
        if isinstance(expr, Var):
            return list(self.bits_of_var(expr.name, expr.width))
        assert isinstance(expr, Op)
        op = expr.op
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise NotImplementedError(f"bit-blasting of operator {op!r}")
        return handler(expr)

    # -- bitwise ---------------------------------------------------------
    def _op_not(self, expr: Op) -> List[int]:
        return [-lit for lit in self.blast(expr.args[0])]

    def _bitwise(self, expr: Op, gate) -> List[int]:
        a = self.blast(expr.args[0])
        b = self.blast(expr.args[1])
        return [gate(x, y) for x, y in zip(a, b)]

    def _op_and(self, expr: Op) -> List[int]:
        return self._bitwise(expr, lambda x, y: self._encoder.and_gate([x, y]))

    def _op_or(self, expr: Op) -> List[int]:
        return self._bitwise(expr, lambda x, y: self._encoder.or_gate([x, y]))

    def _op_xor(self, expr: Op) -> List[int]:
        return self._bitwise(expr, self._encoder.xor_gate)

    def _op_xnor(self, expr: Op) -> List[int]:
        return self._bitwise(expr, self._encoder.xnor_gate)

    def _op_nand(self, expr: Op) -> List[int]:
        return self._bitwise(expr, lambda x, y: -self._encoder.and_gate([x, y]))

    def _op_nor(self, expr: Op) -> List[int]:
        return self._bitwise(expr, lambda x, y: -self._encoder.or_gate([x, y]))

    # -- arithmetic --------------------------------------------------------
    def _adder(self, a: Sequence[int], b: Sequence[int], carry: int) -> List[int]:
        out = []
        for x, y in zip(a, b):
            total, carry = self._encoder.full_adder(x, y, carry)
            out.append(total)
        return out

    def _op_add(self, expr: Op) -> List[int]:
        a = self.blast(expr.args[0])
        b = self.blast(expr.args[1])
        return self._adder(a, b, self._encoder.false_lit)

    def _op_sub(self, expr: Op) -> List[int]:
        a = self.blast(expr.args[0])
        b = self.blast(expr.args[1])
        return self._adder(a, [-lit for lit in b], self._encoder.true_lit)

    def _op_neg(self, expr: Op) -> List[int]:
        a = self.blast(expr.args[0])
        zeros = self.const_bits(0, len(a))
        return self._adder(zeros, [-lit for lit in a], self._encoder.true_lit)

    def _op_mul(self, expr: Op) -> List[int]:
        a = self.blast(expr.args[0])
        b = self.blast(expr.args[1])
        width = len(a)
        accum = self.const_bits(0, width)
        for shift, b_bit in enumerate(b):
            # partial product: (a << shift) AND-ed with b_bit, added to accum
            partial = [
                self._encoder.and_gate([a[i - shift], b_bit]) if i >= shift else self._encoder.false_lit
                for i in range(width)
            ]
            accum = self._adder(accum, partial, self._encoder.false_lit)
        return accum

    def _op_udiv(self, expr: Op) -> List[int]:
        quotient, _ = self._divmod(expr.args[0], expr.args[1])
        return quotient

    def _op_urem(self, expr: Op) -> List[int]:
        _, remainder = self._divmod(expr.args[0], expr.args[1])
        return remainder

    def _divmod(self, num_expr: Expr, den_expr: Expr) -> Tuple[List[int], List[int]]:
        """Restoring long division; division by zero yields (all-ones, dividend)."""
        numerator = self.blast(num_expr)
        denominator = self.blast(den_expr)
        width = len(numerator)
        encoder = self._encoder
        remainder = self.const_bits(0, width)
        quotient = [encoder.false_lit] * width
        for i in reversed(range(width)):
            # remainder = (remainder << 1) | numerator[i]
            remainder = [numerator[i]] + remainder[:-1]
            # compare remainder >= denominator
            geq = self._unsigned_geq(remainder, denominator)
            # subtract if geq
            difference = self._adder(
                remainder, [-lit for lit in denominator], encoder.true_lit
            )
            remainder = [
                encoder.ite_gate(geq, diff_bit, rem_bit)
                for diff_bit, rem_bit in zip(difference, remainder)
            ]
            quotient[i] = geq
        den_zero = -encoder.or_gate(denominator)
        ones = self.const_bits((1 << width) - 1, width)
        quotient = [
            encoder.ite_gate(den_zero, one_bit, q_bit)
            for one_bit, q_bit in zip(ones, quotient)
        ]
        remainder = [
            encoder.ite_gate(den_zero, num_bit, r_bit)
            for num_bit, r_bit in zip(numerator, remainder)
        ]
        return quotient, remainder

    # -- shifts -----------------------------------------------------------
    def _shift(self, expr: Op, arithmetic: bool, left: bool) -> List[int]:
        value = self.blast(expr.args[0])
        amount = self.blast(expr.args[1])
        width = len(value)
        encoder = self._encoder
        fill = value[-1] if arithmetic else encoder.false_lit
        stages = max(1, (width - 1).bit_length())
        current = list(value)
        for stage in range(stages):
            if stage >= len(amount):
                break
            shift_by = 1 << stage
            sel = amount[stage]
            shifted = []
            for i in range(width):
                if left:
                    src = i - shift_by
                    shifted_bit = current[src] if src >= 0 else encoder.false_lit
                else:
                    src = i + shift_by
                    shifted_bit = current[src] if src < width else fill
                shifted.append(encoder.ite_gate(sel, shifted_bit, current[i]))
            current = shifted
        # if any higher shift-amount bit is set, the result saturates
        high_bits = amount[stages:]
        if high_bits:
            overflow = encoder.or_gate(high_bits)
            saturated = encoder.false_lit if (left or not arithmetic) else fill
            current = [encoder.ite_gate(overflow, saturated, bit) for bit in current]
        return current

    def _op_shl(self, expr: Op) -> List[int]:
        return self._shift(expr, arithmetic=False, left=True)

    def _op_lshr(self, expr: Op) -> List[int]:
        return self._shift(expr, arithmetic=False, left=False)

    def _op_ashr(self, expr: Op) -> List[int]:
        return self._shift(expr, arithmetic=True, left=False)

    # -- comparisons --------------------------------------------------------
    def _unsigned_geq(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Return a literal true iff vector a >= vector b (unsigned)."""
        encoder = self._encoder
        # a >= b  <=>  carry-out of a + ~b + 1 is 1
        carry = encoder.true_lit
        for x, y in zip(a, b):
            axb = encoder.xor_gate(x, -y)
            carry = encoder.or_gate(
                [encoder.and_gate([x, -y]), encoder.and_gate([axb, carry])]
            )
        return carry

    def _equality(self, expr: Op) -> int:
        a = self.blast(expr.args[0])
        b = self.blast(expr.args[1])
        return self._encoder.and_gate(
            [self._encoder.xnor_gate(x, y) for x, y in zip(a, b)]
        )

    def _op_eq(self, expr: Op) -> List[int]:
        return [self._equality(expr)]

    def _op_ne(self, expr: Op) -> List[int]:
        return [-self._equality(expr)]

    def _op_ult(self, expr: Op) -> List[int]:
        a = self.blast(expr.args[0])
        b = self.blast(expr.args[1])
        return [-self._unsigned_geq(a, b)]

    def _op_ule(self, expr: Op) -> List[int]:
        a = self.blast(expr.args[0])
        b = self.blast(expr.args[1])
        return [self._unsigned_geq(b, a)]

    def _op_ugt(self, expr: Op) -> List[int]:
        a = self.blast(expr.args[0])
        b = self.blast(expr.args[1])
        return [-self._unsigned_geq(b, a)]

    def _op_uge(self, expr: Op) -> List[int]:
        a = self.blast(expr.args[0])
        b = self.blast(expr.args[1])
        return [self._unsigned_geq(a, b)]

    def _signed_compare(self, expr: Op) -> Tuple[List[int], List[int]]:
        """Return operand vectors with the sign bit flipped (maps signed to unsigned)."""
        a = self.blast(expr.args[0])
        b = self.blast(expr.args[1])
        a = a[:-1] + [-a[-1]]
        b = b[:-1] + [-b[-1]]
        return a, b

    def _op_slt(self, expr: Op) -> List[int]:
        a, b = self._signed_compare(expr)
        return [-self._unsigned_geq(a, b)]

    def _op_sle(self, expr: Op) -> List[int]:
        a, b = self._signed_compare(expr)
        return [self._unsigned_geq(b, a)]

    def _op_sgt(self, expr: Op) -> List[int]:
        a, b = self._signed_compare(expr)
        return [-self._unsigned_geq(b, a)]

    def _op_sge(self, expr: Op) -> List[int]:
        a, b = self._signed_compare(expr)
        return [self._unsigned_geq(a, b)]

    # -- reductions ---------------------------------------------------------
    def _op_redand(self, expr: Op) -> List[int]:
        bits = self.blast(expr.args[0])
        return [self._encoder.and_gate(bits)]

    def _op_redor(self, expr: Op) -> List[int]:
        bits = self.blast(expr.args[0])
        return [self._encoder.or_gate(bits)]

    def _op_redxor(self, expr: Op) -> List[int]:
        bits = self.blast(expr.args[0])
        result = bits[0]
        for bit in bits[1:]:
            result = self._encoder.xor_gate(result, bit)
        return [result]

    # -- structural -----------------------------------------------------------
    def _op_concat(self, expr: Op) -> List[int]:
        # first argument is the most significant part; result is LSB-first
        parts = [self.blast(arg) for arg in expr.args]
        result: List[int] = []
        for part in reversed(parts):
            result.extend(part)
        return result

    def _op_extract(self, expr: Op) -> List[int]:
        hi, lo = expr.params
        bits = self.blast(expr.args[0])
        return bits[lo : hi + 1]

    def _op_zext(self, expr: Op) -> List[int]:
        (extra,) = expr.params
        bits = self.blast(expr.args[0])
        return bits + [self._encoder.false_lit] * extra

    def _op_sext(self, expr: Op) -> List[int]:
        (extra,) = expr.params
        bits = self.blast(expr.args[0])
        return bits + [bits[-1]] * extra

    def _op_ite(self, expr: Op) -> List[int]:
        cond = self.blast_bool(expr.args[0])
        then_bits = self.blast(expr.args[1])
        else_bits = self.blast(expr.args[2])
        return [
            self._encoder.ite_gate(cond, t, e) for t, e in zip(then_bits, else_bits)
        ]
