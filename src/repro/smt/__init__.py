"""Word-level (bit-vector) decision procedure.

The layer gives the verification engines an SMT-like interface over the
expression IR of :mod:`repro.exprs`: expressions are bit-blasted onto the
CDCL solver of :mod:`repro.sat` through a Tseitin encoder.  This mirrors the
flattening-based back-ends of EBMC and CBMC that the paper uses for the
word-level and software-level flows.
"""

from repro.smt.bitblaster import BitBlaster
from repro.smt.solver import BVSolver, BVResult

__all__ = ["BitBlaster", "BVSolver", "BVResult"]
