"""Journal replication: hot standbys that turn a primary crash into takeover.

The crash-safety story of one box is the write-ahead journal; the fleet
story is the same journal *streamed*.  A primary's
:class:`ReplicationManager` hooks :attr:`RequestJournal.on_record` and
pushes every appended record to each subscribed standby as a sequenced
``repl-append`` frame over the ordinary ``repro-serve-v1`` connection; the
standby's :class:`StandbyReplica` applies each record to its own journal
file and answers with ``repl-ack``.  A new subscriber first receives the
journal's current bytes in one ``repl-snapshot`` frame, so resubscribing
after a dropped link is always a full resync — there is no partial-state
protocol to get wrong.

Sync levels trade accept latency for takeover fidelity:

* ``async`` (default) — the accept reply does not wait for standbys; a
  primary SIGKILL may lose the journal tail that was still in flight, and
  those clients see their resubmission (not their original accept) honored.
* ``sync`` — the accept reply is sent only after at least one standby has
  acked the accept record (bounded by ``sync_timeout_s``, after which the
  server degrades to async rather than wedging admissions on a dead link).

Takeover: the standby runs a normal :class:`VerifyServer` in ``standby``
role (it listens, answers pings/heartbeats/status, rejects ``verify`` with
``reason: standby``).  When its subscription dies and cannot be re-
established within ``takeover_after_s``, it calls ``server.promote()``:
replay the replicated journal, requeue every accepted-but-unanswered
request as a waiterless recovery computation, and open admissions — a
primary SIGKILL becomes a takeover-requeue instead of a restart-NACK.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional

from repro.faults import injection as _fault_injection
from repro.obs import log as _log
from repro.obs import telemetry as _telemetry
from repro.serve.protocol import (
    OP_REPL_ACK,
    OP_REPL_APPEND,
    OP_REPL_HEARTBEAT,
    OP_REPL_SNAPSHOT,
    OP_REPL_SUBSCRIBE,
    ProtocolError,
    open_addr,
    read_frame,
    write_frame,
)

#: idle keepalive cadence on an established replication stream
REPL_HEARTBEAT_S = 1.0
#: a stream with no frame for this long is considered dead by the standby
REPL_SILENCE_S = 3.5


class _Subscriber:
    """One standby's live subscription on the primary."""

    __slots__ = ("conn", "name", "acked", "queue", "task", "alive", "since")

    def __init__(self, conn, name: str) -> None:
        self.conn = conn
        self.name = name
        self.acked = 0
        self.queue: asyncio.Queue = asyncio.Queue()
        self.task: Optional[asyncio.Task] = None
        self.alive = True
        self.since = time.monotonic()


class ReplicationManager:
    """Primary-side half: stream journal records, track standby acks."""

    def __init__(
        self,
        server,
        sync_level: str = "async",
        sync_timeout_s: float = 2.0,
    ) -> None:
        if sync_level not in ("async", "sync"):
            raise ValueError(f"unknown sync level {sync_level!r}")
        self.server = server
        self.sync_level = sync_level
        self.sync_timeout_s = sync_timeout_s
        #: records published since this process became (or started as) primary
        self.seq = 0
        self.subscribers: List[_Subscriber] = []
        self.sync_timeouts = 0
        self.link_drops = 0
        self.subscriptions = 0
        self._ack_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._ack_event = asyncio.Event()

    # ------------------------------------------------------------------
    def publish(self, line: str) -> None:
        """Fan one just-appended journal record out to every subscriber.

        Installed as the journal's ``on_record`` hook; appends happen on
        the event-loop thread, so plain ``put_nowait`` is safe.
        """
        self.seq += 1
        for subscriber in self.subscribers:
            if subscriber.alive:
                subscriber.queue.put_nowait((self.seq, line))

    async def wait_synced(self) -> bool:
        """Block (sync level only) until a standby acked the current seq."""
        if self.sync_level != "sync":
            return True
        target = self.seq
        deadline = time.monotonic() + self.sync_timeout_s
        while True:
            live = [s for s in self.subscribers if s.alive]
            if not live:
                # no standby attached: degrade to async rather than refuse
                # every admission — the journal itself is still the backstop
                return True
            if any(s.acked >= target for s in live):
                return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.sync_timeouts += 1
                _telemetry.counter("serve.repl.sync_timeouts")
                return False
            self._ack_event.clear()
            try:
                await asyncio.wait_for(self._ack_event.wait(), remaining)
            except asyncio.TimeoutError:
                self.sync_timeouts += 1
                _telemetry.counter("serve.repl.sync_timeouts")
                return False

    # ------------------------------------------------------------------
    async def handle_subscribe(self, conn, request: dict) -> None:
        """A standby subscribed on ``conn``: snapshot, then stream live."""
        name = str(request.get("name") or f"standby-{len(self.subscribers)}")
        subscriber = _Subscriber(conn, name)
        journal = self.server.journal
        snapshot = journal.read_text() if journal is not None else ""
        ok = await conn.send(
            {
                "ok": True,
                "op": OP_REPL_SNAPSHOT,
                "seq": self.seq,
                "journal": snapshot,
                "sync_level": self.sync_level,
            }
        )
        if not ok:
            return
        self.subscribers.append(subscriber)
        self.subscriptions += 1
        _telemetry.counter("serve.repl.subscriptions")
        _log.info(f"replication: standby {name!r} subscribed at seq {self.seq}")
        subscriber.task = asyncio.create_task(self._stream(subscriber))

    def handle_ack(self, conn, request: dict) -> None:
        for subscriber in self.subscribers:
            if subscriber.conn is conn:
                try:
                    subscriber.acked = max(subscriber.acked, int(request.get("seq", 0)))
                except (TypeError, ValueError):
                    pass
                if self._ack_event is not None:
                    self._ack_event.set()
                return

    def drop_connection(self, conn) -> None:
        """A connection died; retire any subscription riding on it."""
        for subscriber in list(self.subscribers):
            if subscriber.conn is conn:
                subscriber.alive = False
                if subscriber.task is not None:
                    subscriber.task.cancel()
                self.subscribers.remove(subscriber)

    async def _stream(self, subscriber: _Subscriber) -> None:
        """Pump one subscriber's queue onto its connection, with keepalives."""
        try:
            while subscriber.alive and subscriber.conn.alive:
                try:
                    seq, line = await asyncio.wait_for(
                        subscriber.queue.get(), timeout=REPL_HEARTBEAT_S
                    )
                except asyncio.TimeoutError:
                    if not await subscriber.conn.send(
                        {"ok": True, "op": OP_REPL_HEARTBEAT, "seq": self.seq}
                    ):
                        break
                    continue
                if _fault_injection.drop_replication_link(
                    f"{subscriber.name}:{seq}"
                ):
                    # chaos: sever the link mid-stream; the standby must
                    # resubscribe and resync from a fresh snapshot
                    self.link_drops += 1
                    _telemetry.counter("serve.repl.link_drops")
                    subscriber.conn.alive = False
                    try:
                        subscriber.conn.writer.close()
                    except (ConnectionError, OSError):
                        pass
                    break
                if not await subscriber.conn.send(
                    {"ok": True, "op": OP_REPL_APPEND, "seq": seq, "record": line}
                ):
                    break
        except asyncio.CancelledError:  # pragma: no cover - drop_connection
            pass
        finally:
            subscriber.alive = False
            if subscriber in self.subscribers:
                self.subscribers.remove(subscriber)

    # ------------------------------------------------------------------
    def status(self) -> dict:
        return {
            "sync_level": self.sync_level,
            "seq": self.seq,
            "standbys": [
                {
                    "name": s.name,
                    "acked": s.acked,
                    "lag": max(0, self.seq - s.acked),
                    "connected_s": round(time.monotonic() - s.since, 3),
                }
                for s in self.subscribers
                if s.alive
            ],
            "subscriptions": self.subscriptions,
            "sync_timeouts": self.sync_timeouts,
            "link_drops": self.link_drops,
        }

    def lag(self) -> Optional[int]:
        live = [s for s in self.subscribers if s.alive]
        if not live:
            return None
        return max(0, self.seq - max(s.acked for s in live))


class StandbyReplica:
    """Standby-side half: subscribe, apply, ack — and take over when orphaned."""

    def __init__(
        self,
        server,
        primary_addr: str,
        takeover_after_s: float = 3.0,
        name: Optional[str] = None,
    ) -> None:
        self.server = server
        self.primary_addr = primary_addr
        self.takeover_after_s = takeover_after_s
        self.name = name or server.server_id
        self.connected = False
        self.applied = 0
        self.records_applied = 0
        self.reconnects = 0
        self.stale_drops = 0
        self.promoted = False

    async def run(self) -> None:
        """Follow the primary until shutdown — or until takeover is due."""
        unreachable_since: Optional[float] = None
        backoff = 0.05
        while not self.server.draining and not self.promoted:
            synced = False
            try:
                synced = await self._follow_once()
            except (ConnectionError, OSError, ProtocolError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                pass
            if self.server.draining or self.promoted:
                break
            self.connected = False
            now = time.monotonic()
            if synced:
                # the primary *was* up this attempt: the takeover window
                # (continuous unreachability) restarts from its death
                unreachable_since = now
                backoff = 0.05
            elif unreachable_since is None:
                unreachable_since = now
            elif now - unreachable_since >= self.takeover_after_s:
                self.promoted = True
                _log.info(
                    f"standby {self.name!r}: primary {self.primary_addr} "
                    f"unreachable for {now - unreachable_since:.2f}s — taking over"
                )
                await self.server.promote(reason="primary unreachable")
                return
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2.0, 0.5)

    async def _follow_once(self) -> bool:
        """One subscription: connect, resync from snapshot, apply until EOF.

        Returns whether a snapshot was installed (the primary was truly up).
        """
        synced = False
        reader, writer = await open_addr(self.primary_addr)
        try:
            hello = await asyncio.wait_for(read_frame(reader), REPL_SILENCE_S)
            if not isinstance(hello, dict) or "protocol" not in hello:
                raise ProtocolError(f"primary sent no hello: {hello!r}")
            await write_frame(
                writer, {"op": OP_REPL_SUBSCRIBE, "name": self.name}
            )
            self.reconnects += 1
            while not self.server.draining:
                frame = await asyncio.wait_for(read_frame(reader), REPL_SILENCE_S)
                if frame is None:
                    return synced  # primary closed the stream
                if not isinstance(frame, dict):
                    continue
                op = frame.get("op")
                if op == OP_REPL_SNAPSHOT:
                    journal = self.server.journal
                    if journal is not None:
                        journal.reset(str(frame.get("journal", "")))
                    self.applied = int(frame.get("seq", 0))
                    self.connected = True
                    synced = True
                    _telemetry.counter("serve.repl.snapshots")
                    await write_frame(
                        writer, {"op": OP_REPL_ACK, "seq": self.applied}
                    )
                elif op == OP_REPL_APPEND:
                    seq = int(frame.get("seq", self.applied + 1))
                    record = str(frame.get("record", ""))
                    if _fault_injection.stale_standby(f"{self.name}:{seq}"):
                        # chaos: ack without persisting — a takeover from
                        # here runs with a stale journal tail
                        self.stale_drops += 1
                        _telemetry.counter("serve.repl.stale_drops")
                    elif record and self.server.journal is not None:
                        self.server.journal.append_raw(record)
                        self.records_applied += 1
                    self.applied = seq
                    await write_frame(writer, {"op": OP_REPL_ACK, "seq": seq})
                elif op == OP_REPL_HEARTBEAT:
                    await write_frame(
                        writer, {"op": OP_REPL_ACK, "seq": self.applied}
                    )
            return synced
        finally:
            self.connected = False
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def status(self) -> dict:
        return {
            "primary": self.primary_addr,
            "connected": self.connected,
            "applied_seq": self.applied,
            "records_applied": self.records_applied,
            "reconnects": self.reconnects,
            "stale_drops": self.stale_drops,
            "promoted": self.promoted,
            "takeover_after_s": self.takeover_after_s,
        }
