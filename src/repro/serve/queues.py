"""Bounded priority admission queue for the verify server.

Admission control is the load-shedding half of the server's robustness
story: a queue that grows without bound converts overload into unbounded
latency for *everyone* and an eventual OOM kill; a bounded queue converts
it into an explicit, immediate ``rejected: overloaded`` reply for the
*marginal* request while every admitted request keeps its latency.  The
queue is priority-ordered (interactive requests overtake bulk sweeps) with
FIFO order inside one priority class.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import List, Optional, Tuple

#: priority classes, lower number = served first
PRIORITIES = {"interactive": 0, "batch": 1, "bulk": 2}
DEFAULT_PRIORITY = "batch"


def priority_value(name: Optional[str]) -> int:
    """Map a request's priority label to its queue rank (unknown = bulk)."""
    if name is None:
        return PRIORITIES[DEFAULT_PRIORITY]
    return PRIORITIES.get(str(name), PRIORITIES["bulk"])


class QueueClosed(RuntimeError):
    """Raised to getters when the queue is closed and drained."""


class BoundedPriorityQueue:
    """An asyncio priority queue that *rejects* instead of blocking when full.

    ``try_put`` is the admission decision: it never awaits, returning
    ``False`` when the queue is at capacity so the caller can send the
    overload rejection while the event loop stays responsive.  ``get``
    awaits the highest-priority item; a monotonic sequence number breaks
    ties so equal-priority items leave in arrival order and comparison
    never reaches the (uncomparable) items themselves.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("queue capacity must be at least 1")
        self.maxsize = maxsize
        self._heap: List[Tuple[int, int, object]] = []
        self._seq = 0
        self._closed = False
        self._waiters: List[asyncio.Future] = []
        self.admitted = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def _wake_one(self) -> None:
        while self._waiters:
            waiter = self._waiters.pop(0)
            if not waiter.done():
                waiter.set_result(None)
                return

    def try_put(self, item: object, priority: int = 1) -> bool:
        """Admit ``item`` or refuse immediately; never blocks."""
        if self._closed or len(self._heap) >= self.maxsize:
            self.rejected += 1
            return False
        self._seq += 1
        heapq.heappush(self._heap, (priority, self._seq, item))
        self.admitted += 1
        self._wake_one()
        return True

    async def get(self) -> object:
        """Await the best item; raises :class:`QueueClosed` once closed+empty."""
        while True:
            if self._heap:
                return heapq.heappop(self._heap)[2]
            if self._closed:
                raise QueueClosed()
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            finally:
                if waiter in self._waiters:
                    self._waiters.remove(waiter)

    def close(self) -> None:
        """Stop admissions and wake every getter (drain mode)."""
        self._closed = True
        for waiter in list(self._waiters):
            if not waiter.done():
                waiter.set_result(None)
        self._waiters.clear()

    def drain_items(self) -> List[object]:
        """Remove and return everything still queued (priority order)."""
        items = [heapq.heappop(self._heap)[2] for _ in range(len(self._heap))]
        return items
