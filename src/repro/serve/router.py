"""Fleet front: health-checked routing, sharding and transparent failover.

``VerifyRouter`` speaks the same ``repro-serve-v1`` frame protocol on both
sides.  Clients connect to it exactly as they would to a single server;
behind it a fleet of :class:`~repro.serve.server.VerifyServer` members does
the work.  The router owns three jobs:

**Routing.**  Every verify request is hashed to its true certificate-store
key (the same SHA-256 the members use for caching and coalescing — computed
once here, memoized by request fingerprint) and the key's leading byte
picks a shard: ``int(key[:2], 16) * len(members) // 256``.  The same query
therefore always lands on the same member, which is what makes the member's
result cache and in-flight coalescing effective fleet-wide.  When a shard's
member is down the request fails over to the next healthy member — a warm
cache is better than a dead socket.

**Health.**  One persistent connection per member carries forwarded
requests *and* a heartbeat every ``heartbeat_interval_s``; the reply piggy-
backs queue-depth and throttle gauges.  ``heartbeat_misses`` consecutive
silent intervals mark the member down and sever the connection.  Each
member may list a ``standby`` address: on reconnect the router tries the
primary address first, then the standby, and gates on the hello frame's
``role`` — a not-yet-promoted standby is left alone until its takeover
window elects it.

**Failover.**  Forwarded requests are journaled in memory by forward id
(``rt-<n>``).  When a member connection dies, every unanswered forward is
resubmitted verbatim on reconnect — idempotent, because the member
journals accepts by id and coalesces duplicates.  Identical queries from
different clients coalesce *at the router* too (one forward, many client
stakes), and an answered-ids ledger guarantees a client never sees the
same result twice even if a resubmission races a recovery replay.

Chaos: reconnect attempts consult the ``router-partition`` fault site, so
the soak can sever the router from a member without touching either
process.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import logging
import os
import signal
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.key import cache_key
from repro.faults import injection as _fault_injection
from repro.obs import telemetry as _telemetry
from repro.serve.protocol import (
    OP_DRAIN,
    OP_HEARTBEAT,
    OP_PING,
    OP_PROGRESS,
    OP_STATS,
    OP_STATUS,
    OP_VERIFY,
    PROTOCOL,
    ProtocolError,
    open_addr,
    read_frame,
    write_frame,
)
from repro.serve.server import _resolve_property, _task_from_request

log = logging.getLogger("repro.serve.router")


@dataclass
class MemberSpec:
    """One fleet member: a primary address and an optional hot standby."""

    name: str
    addr: str
    standby_addr: Optional[str] = None

    def addrs(self) -> List[str]:
        return [a for a in (self.addr, self.standby_addr) if a]


@dataclass
class RouterConfig:
    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    members: List[MemberSpec] = field(default_factory=list)
    #: heartbeat cadence per member connection
    heartbeat_interval_s: float = 0.5
    #: consecutive silent intervals before a member is marked down
    heartbeat_misses: int = 3
    #: how long an admission waits for *any* healthy member before rejecting
    route_wait_s: float = 5.0
    #: reconnect backoff bounds for member links
    backoff_s: float = 0.05
    max_backoff_s: float = 1.0


class _Stake:
    """One client's claim on a forwarded request."""

    __slots__ = ("conn", "request_id", "accepted_sent")

    def __init__(self, conn: "_ClientConn", request_id: str) -> None:
        self.conn = conn
        self.request_id = request_id
        self.accepted_sent = False


class _Forward:
    """One routed request: a member-side id plus the client stakes on it."""

    def __init__(self, forward_id: str, key: str, request: dict) -> None:
        self.forward_id = forward_id
        self.key = key
        #: the frame sent to the member (op=verify, id=forward_id)
        self.request = request
        self.stakes: List[_Stake] = []
        self.member: Optional[_Member] = None
        self.accepted = False
        self.answered = False
        self.sent_t = time.monotonic()
        self.span = None

    def alive_stakes(self) -> List[_Stake]:
        return [s for s in self.stakes if s.conn.alive]


class _ClientConn:
    """Per-client connection: serialized writes, stakes by request id."""

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.send_lock = asyncio.Lock()
        self.alive = True

    async def send(self, document: dict) -> bool:
        if not self.alive:
            return False
        try:
            async with self.send_lock:
                await write_frame(self.writer, document)
            return True
        except (ConnectionError, OSError):
            self.alive = False
            return False


class _Member:
    """Router-side state of one fleet member."""

    def __init__(self, spec: MemberSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.healthy = False
        self.misses = 0
        self.connects = 0
        self.partitions = 0
        self.resubmitted = 0
        self.hello: dict = {}
        #: gauges from the last heartbeat reply
        self.health: dict = {}
        self.last_heartbeat_t: Optional[float] = None
        #: unanswered forwards pinned to this member, by forward id
        self.inflight: Dict[str, _Forward] = {}
        self.reader = None
        self.writer = None
        self.send_lock = asyncio.Lock()
        self.task: Optional[asyncio.Task] = None
        self.heartbeat_task: Optional[asyncio.Task] = None
        self.connected_addr: Optional[str] = None

    @property
    def connected(self) -> bool:
        return self.writer is not None

    async def send(self, document: dict) -> bool:
        writer = self.writer
        if writer is None:
            return False
        try:
            async with self.send_lock:
                await write_frame(writer, document)
            return True
        except (ConnectionError, OSError):
            return False

    def sever(self) -> None:
        """Drop the link (reconnect loop picks it back up)."""
        writer, self.writer, self.reader = self.writer, None, None
        if writer is not None:
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()

    def status(self) -> dict:
        return {
            "name": self.name,
            "addr": self.spec.addr,
            "standby_addr": self.spec.standby_addr,
            "connected_addr": self.connected_addr if self.connected else None,
            "healthy": self.healthy,
            "misses": self.misses,
            "connects": self.connects,
            "partitions": self.partitions,
            "resubmitted": self.resubmitted,
            "inflight": len(self.inflight),
            "health": dict(self.health),
        }


class VerifyRouter:
    """See the module docstring; one instance = one routing process."""

    def __init__(self, config: RouterConfig) -> None:
        if not config.socket_path and not config.host:
            raise ValueError("router needs a unix socket path or a TCP host")
        if not config.members:
            raise ValueError("router needs at least one member")
        self.config = config
        self.members = [_Member(spec) for spec in config.members]
        self.draining = False
        #: live forwards by forward id, and by routing key (for coalescing)
        self.forwards: Dict[str, _Forward] = {}
        self.by_key: Dict[str, _Forward] = {}
        #: forward ids already answered: the zero-duplicate-replies ledger
        self.answered_ids: set = set()
        #: request fingerprint -> routing key (the expensive hash, once)
        self._key_memo: Dict[str, str] = {}
        self.counters = {
            "accepted": 0,
            "answered": 0,
            "rejected": 0,
            "coalesced": 0,
            "forwarded": 0,
            "failed_over": 0,
            "duplicate_replies_suppressed": 0,
            "progress_relayed": 0,
            "member_reconnects": 0,
            "member_downs": 0,
        }
        self._next_forward = 0
        self._connections: set = set()
        self._listener = None
        self._shutdown = asyncio.Event()
        self._member_state_changed = asyncio.Event()
        self._router_span = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def serve_forever(self) -> None:
        recorder = _telemetry.get_recorder()
        if recorder is not None:
            self._router_span = recorder.start_span(
                "serve.router",
                pid=os.getpid(),
                protocol=PROTOCOL,
                members=[m.name for m in self.members],
            )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, self.request_shutdown)
        for member in self.members:
            member.task = asyncio.create_task(self._member_loop(member))
        if self.config.socket_path:
            if os.path.exists(self.config.socket_path):
                os.unlink(self.config.socket_path)
            self._listener = await asyncio.start_unix_server(
                self._handle_client, path=self.config.socket_path
            )
            where = self.config.socket_path
        else:
            self._listener = await asyncio.start_server(
                self._handle_client, host=self.config.host, port=self.config.port
            )
            where = f"{self.config.host}:{self.config.port}"
        log.info(
            "router listening on %s over %d member(s)", where, len(self.members)
        )
        try:
            await self._shutdown.wait()
        finally:
            self.draining = True
            self._listener.close()
            await self._listener.wait_closed()
            for member in self.members:
                for task in (member.task, member.heartbeat_task):
                    if task is not None:
                        task.cancel()
                        with contextlib.suppress(asyncio.CancelledError):
                            await task
                member.sever()
            if self._router_span is not None:
                self._router_span.finish(outcome="drained")
            if self.config.socket_path:
                with contextlib.suppress(OSError):
                    os.unlink(self.config.socket_path)

    # ------------------------------------------------------------------
    # member links
    # ------------------------------------------------------------------
    async def _member_loop(self, member: _Member) -> None:
        """Own one member's link: connect, resubmit, read until it dies."""
        backoff = self.config.backoff_s
        epoch = 0
        while not self._shutdown.is_set():
            epoch += 1
            if _fault_injection.router_partition(f"{member.name}:{epoch}"):
                # chaos: the wire to this member is cut for one attempt
                member.partitions += 1
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.config.max_backoff_s)
                continue
            connected = False
            for addr in member.spec.addrs():
                try:
                    reader, writer = await open_addr(addr)
                    hello = await asyncio.wait_for(read_frame(reader), 5.0)
                except (ConnectionError, OSError, asyncio.TimeoutError,
                        ProtocolError):
                    continue
                if not isinstance(hello, dict) or hello.get("role") != "primary":
                    # a standby holds this address: leave it be until its
                    # takeover window promotes it
                    writer.close()
                    continue
                member.reader, member.writer = reader, writer
                member.connected_addr = addr
                member.hello = hello
                member.connects += 1
                connected = True
                break
            if not connected:
                self._mark_down(member)
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.config.max_backoff_s)
                continue
            backoff = self.config.backoff_s
            self.counters["member_reconnects"] += 1
            await self._resubmit(member)
            self._mark_healthy(member)
            if member.heartbeat_task is None or member.heartbeat_task.done():
                member.heartbeat_task = asyncio.create_task(
                    self._heartbeat_loop(member)
                )
            try:
                await self._member_read_loop(member)
            except (ConnectionError, OSError, ProtocolError):
                pass
            finally:
                member.sever()
                self._mark_down(member)

    async def _resubmit(self, member: _Member) -> None:
        """Replay every unanswered forward on a fresh link (idempotent)."""
        for forward in list(member.inflight.values()):
            if forward.answered:
                member.inflight.pop(forward.forward_id, None)
                continue
            if not await member.send(forward.request):
                return
            member.resubmitted += 1

    async def _member_read_loop(self, member: _Member) -> None:
        reader = member.reader
        while reader is not None and member.writer is not None:
            frame = await read_frame(reader)
            if frame is None:
                return
            if not isinstance(frame, dict):
                continue
            op = frame.get("op")
            if op == "heartbeat-reply":
                member.misses = 0
                member.last_heartbeat_t = time.monotonic()
                member.health = {
                    name: frame.get(name)
                    for name in (
                        "queue_depth", "active", "concurrency", "repl_lag",
                        "accepted", "answered", "cancelled", "draining",
                        "uptime_s",
                    )
                }
                self._mark_healthy(member)
            elif op == "accepted":
                await self._on_accepted(member, frame)
            elif op == "rejected":
                await self._on_rejected(member, frame)
            elif op == "result":
                await self._on_result(member, frame)
            elif op == OP_PROGRESS:
                await self._on_progress(member, frame)
            # anything else (pong, draining, ...) is noise to the router

    async def _heartbeat_loop(self, member: _Member) -> None:
        n = 0
        while member.connected and not self._shutdown.is_set():
            n += 1
            pending = await member.send(
                {"op": OP_HEARTBEAT, "id": f"hb-{member.name}-{n}"}
            )
            sent_t = time.monotonic()
            await asyncio.sleep(self.config.heartbeat_interval_s)
            if not member.connected:
                return
            if not pending or (
                member.last_heartbeat_t is None
                or member.last_heartbeat_t < sent_t
            ):
                member.misses += 1
                if member.misses >= self.config.heartbeat_misses:
                    # silent too long: declare it down and force a reconnect
                    log.warning(
                        "member %s missed %d heartbeat(s); severing",
                        member.name, member.misses,
                    )
                    member.sever()
                    self._mark_down(member)
                    return

    def _mark_healthy(self, member: _Member) -> None:
        if not member.healthy:
            member.healthy = True
            member.misses = 0
            self._member_state_changed.set()
            _telemetry.counter("router.member_up")

    def _mark_down(self, member: _Member) -> None:
        if member.healthy:
            member.healthy = False
            self.counters["member_downs"] += 1
            _telemetry.counter("router.member_down")
        self._member_state_changed.set()

    # ------------------------------------------------------------------
    # member frames -> client stakes
    # ------------------------------------------------------------------
    async def _on_accepted(self, member: _Member, frame: dict) -> None:
        forward = self.forwards.get(frame.get("id"))
        if forward is None:
            return
        forward.accepted = True
        self.counters["accepted"] += len(
            [s for s in forward.stakes if not s.accepted_sent]
        )
        for stake in forward.alive_stakes():
            if stake.accepted_sent:
                continue
            stake.accepted_sent = True
            await stake.conn.send(
                {
                    "ok": True,
                    "op": "accepted",
                    "id": stake.request_id,
                    "key": forward.key,
                    "member": member.name,
                    "coalesced": bool(frame.get("coalesced")),
                }
            )

    async def _on_rejected(self, member: _Member, frame: dict) -> None:
        forward = self.forwards.get(frame.get("id"))
        if forward is None:
            return
        if frame.get("reason") == "standby":
            # lost a promotion race: the link loop reconnects and
            # resubmits once the hello shows a primary again
            member.sever()
            return
        self._retire(forward)
        self.counters["rejected"] += len(forward.stakes)
        for stake in forward.alive_stakes():
            await stake.conn.send(
                {
                    "ok": False,
                    "op": "rejected",
                    "id": stake.request_id,
                    "reason": frame.get("reason"),
                    "member": member.name,
                }
            )

    async def _on_result(self, member: _Member, frame: dict) -> None:
        forward_id = frame.get("id")
        forward = self.forwards.get(forward_id)
        if forward is None or forward_id in self.answered_ids:
            # a resubmission raced a recovery replay: one reply per
            # client, the ledger eats the echo
            self.counters["duplicate_replies_suppressed"] += 1
            return
        self.answered_ids.add(forward_id)
        forward.answered = True
        self._retire(forward)
        if forward.span is not None:
            forward.span.finish(outcome="answered")
            forward.span = None
        self.counters["answered"] += len(forward.stakes)
        for stake in forward.alive_stakes():
            reply = dict(frame)
            reply["id"] = stake.request_id
            reply["member"] = member.name
            await stake.conn.send(reply)

    async def _on_progress(self, member: _Member, frame: dict) -> None:
        forward = self.forwards.get(frame.get("id"))
        if forward is None:
            return
        self.counters["progress_relayed"] += 1
        for stake in forward.alive_stakes():
            relay = dict(frame)
            relay["id"] = stake.request_id
            relay["member"] = member.name
            await stake.conn.send(relay)

    def _retire(self, forward: _Forward) -> None:
        self.forwards.pop(forward.forward_id, None)
        if self.by_key.get(forward.key) is forward:
            self.by_key.pop(forward.key, None)
        if forward.member is not None:
            forward.member.inflight.pop(forward.forward_id, None)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        conn = _ClientConn(reader, writer)
        self._connections.add(conn)
        await conn.send(
            {
                "op": "hello",
                "protocol": PROTOCOL,
                "pid": os.getpid(),
                "role": "router",
                "server_id": "router",
                "members": [m.name for m in self.members],
            }
        )
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as error:
                    await conn.send({"ok": False, "error": str(error)})
                    break
                if request is None:
                    break
                if not isinstance(request, dict):
                    await conn.send(
                        {"ok": False, "error": "request must be an object"}
                    )
                    continue
                await self._handle_request(conn, request)
        except (ConnectionError, OSError):
            pass
        finally:
            conn.alive = False
            self._connections.discard(conn)
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    async def _handle_request(self, conn: _ClientConn, request: dict) -> None:
        op = request.get("op")
        if op == OP_PING:
            await conn.send(
                {"ok": True, "op": "pong", "draining": self.draining}
            )
        elif op in (OP_STATS, OP_STATUS):
            reply_op = "stats" if op == OP_STATS else "status"
            await conn.send(
                {"ok": True, "op": reply_op, reply_op: self.status_doc()}
            )
        elif op == OP_HEARTBEAT:
            await conn.send(
                {
                    "ok": True,
                    "op": "heartbeat-reply",
                    "id": request.get("id"),
                    "role": "router",
                    "server_id": "router",
                    "healthy_members": sum(
                        1 for m in self.members if m.healthy
                    ),
                    "accepted": self.counters["accepted"],
                    "answered": self.counters["answered"],
                    "uptime_s": time.monotonic() - self._started_at,
                }
            )
        elif op == OP_DRAIN:
            await conn.send({"ok": True, "op": "draining"})
            self.request_shutdown()
        elif op == OP_VERIFY:
            await self._route(conn, request)
        else:
            await conn.send({"ok": False, "error": f"unknown op {op!r}"})

    async def _route(self, conn: _ClientConn, request: dict) -> None:
        request_id = str(request.get("id") or f"req-{uuid.uuid4().hex[:12]}")
        if self.draining:
            await conn.send(
                {"ok": False, "op": "rejected", "id": request_id,
                 "reason": "draining"}
            )
            return
        try:
            key = await self._routing_key(request)
        except Exception as error:  # noqa: BLE001 - reply, don't die
            await conn.send(
                {"ok": False, "op": "rejected", "id": request_id,
                 "reason": f"bad request: {error}"}
            )
            return

        stake = _Stake(conn, request_id)
        existing = self.by_key.get(key)
        if existing is not None and not existing.answered:
            # router-side coalescing: same query from another box shares
            # the one forward already in flight
            existing.stakes.append(stake)
            self.counters["coalesced"] += 1
            _telemetry.counter("router.coalesced")
            if existing.accepted:
                stake.accepted_sent = True
                self.counters["accepted"] += 1
                await conn.send(
                    {"ok": True, "op": "accepted", "id": request_id,
                     "key": key, "coalesced": True}
                )
            return

        member = await self._pick_member(key)
        if member is None:
            await conn.send(
                {"ok": False, "op": "rejected", "id": request_id,
                 "reason": "no healthy members"}
            )
            return
        self._next_forward += 1
        forward_id = f"rt-{self._next_forward}"
        forwarded = dict(request)
        forwarded["op"] = OP_VERIFY
        forwarded["id"] = forward_id
        forward = _Forward(forward_id, key, forwarded)
        forward.stakes.append(stake)
        forward.member = member
        recorder = _telemetry.get_recorder()
        if recorder is not None:
            forward.span = recorder.start_span(
                "router.request",
                parent=self._router_span,
                key=key,
                member=member.name,
                # the cross-box stitch key: the member's serve.request span
                # carries the same forward id in its ``request`` attr
                request=forward_id,
                client_ids=[request_id],
            )
        self.forwards[forward_id] = forward
        self.by_key[key] = forward
        member.inflight[forward_id] = forward
        self.counters["forwarded"] += 1
        _telemetry.counter("router.forwarded")
        if not await member.send(forwarded):
            # link died under us: the reconnect loop will resubmit from
            # member.inflight — the client just waits a beat longer
            member.sever()

    async def _routing_key(self, request: dict) -> str:
        """The member-identical cache key, memoized by request fingerprint."""
        fingerprint_doc = {
            name: request.get(name)
            for name in ("design", "verilog", "aiger", "top", "property",
                         "representation")
        }
        fingerprint = hashlib.sha256(
            json.dumps(fingerprint_doc, sort_keys=True).encode("utf-8")
        ).hexdigest()
        memoized = self._key_memo.get(fingerprint)
        if memoized is not None:
            return memoized

        def compute() -> str:
            task = _task_from_request(request)
            system = task.load()
            property_name = _resolve_property(system, request.get("property"))
            representation = str(request.get("representation", "word"))
            return cache_key(system, property_name, representation)

        key = await asyncio.to_thread(compute)
        self._key_memo[fingerprint] = key
        return key

    async def _pick_member(self, key: str) -> Optional[_Member]:
        """Shard by key prefix; fail over to the next healthy member."""
        deadline = time.monotonic() + self.config.route_wait_s
        shard = int(key[:2], 16) * len(self.members) // 256
        while True:
            home = self.members[shard]
            if home.healthy:
                return home
            for offset in range(1, len(self.members)):
                candidate = self.members[(shard + offset) % len(self.members)]
                if candidate.healthy:
                    self.counters["failed_over"] += 1
                    _telemetry.counter("router.failed_over")
                    return candidate
            if time.monotonic() >= deadline:
                return None
            # every member is down: wait for the first link to come back
            self._member_state_changed.clear()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._member_state_changed.wait(),
                    max(0.05, deadline - time.monotonic()),
                )

    # ------------------------------------------------------------------
    def status_doc(self) -> dict:
        return {
            "role": "router",
            "uptime_s": time.monotonic() - self._started_at,
            "draining": self.draining,
            "counters": dict(self.counters),
            "forwards_inflight": len(self.forwards),
            "members": [m.status() for m in self.members],
        }
