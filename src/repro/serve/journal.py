"""Crash-safe write-ahead journal of accepted verification requests.

The server's durability contract is *no silent loss*: every request it has
told a client "accepted" is either answered, cleanly rejected, or — after a
crash — discovered by the restarted server and NACKed (or requeued).  The
journal is the whole mechanism: an append-only JSONL file with one
``accept`` record per admitted request and one ``close`` record per final
outcome.  An id with an ``accept`` but no ``close`` is exactly the set of
requests a crash may have swallowed.

Records are appended with a single ``write()`` of one line plus a flush, so
the only possible corruption is a torn *tail* (the crash happened mid
append).  Recovery parses line by line and tolerates garbage anywhere: a
torn or undecodable line is counted and skipped, never fatal — a journal
must not be able to wedge the server it exists to protect.  Compaction
(dropping closed pairs) rewrites the file atomically via
:func:`repro.jsonio.write_text_atomic`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.faults import injection as _fault_injection
from repro.jsonio import write_text_atomic

#: format tag carried by every record
JOURNAL_FORMAT = "repro-serve-journal-v1"

#: close outcomes
ANSWERED = "answered"
REJECTED = "rejected"
CANCELLED = "cancelled"
NACKED = "nacked"
REQUEUED = "requeued"


@dataclass
class RecoveryReport:
    """What a journal replay found: open requests and damage."""

    total_records: int = 0
    open_requests: Dict[str, dict] = field(default_factory=dict)
    closed: int = 0
    torn_lines: int = 0

    def to_json(self) -> dict:
        return {
            "total_records": self.total_records,
            "open": sorted(self.open_requests),
            "closed": self.closed,
            "torn_lines": self.torn_lines,
        }


class RequestJournal:
    """Append-only accept/close journal at ``path``.

    ``fsync`` (default off) adds an ``os.fsync`` per append: the soak and
    tests don't need power-loss durability, only crash (process-death)
    durability, which flush alone provides — the data is in the page cache
    the moment ``write`` returns, and a SIGKILL cannot claw it back.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._handle = None
        self.appends = 0
        self.torn_injected = 0
        #: appends and compaction rewrite the same file; the lock makes an
        #: in-flight append atomic with respect to the replay-then-rename,
        #: so compaction can never drop a record landing concurrently
        self._lock = threading.RLock()
        #: replication hook: called with each serialized record line after
        #: it is durably appended (the primary streams these to standbys)
        self.on_record: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    def _open(self):
        if self._handle is None or self._handle.closed:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()

    def _append(self, record: dict, key: str) -> None:
        record["format"] = JOURNAL_FORMAT
        record["t"] = time.time()
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            handle = self._open()
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self.appends += 1
            if _fault_injection.torn_journal_append(self.path, key):
                self.torn_injected += 1
                # the tear truncated the file under our append handle; reopen
                # so the next append lands at the (new) end, not in a hole
                self.close()
        if self.on_record is not None:
            self.on_record(line)

    def append_raw(self, line: str) -> None:
        """Append one already-serialized record (standby replication apply)."""
        with self._lock:
            handle = self._open()
            handle.write(line.rstrip("\n") + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self.appends += 1

    def read_text(self) -> str:
        """The journal's current bytes (a replication snapshot)."""
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.flush()
            try:
                with open(self.path, "r", encoding="utf-8") as handle:
                    return handle.read()
            except OSError:
                return ""

    def reset(self, text: str) -> None:
        """Atomically replace the journal (installing a replication snapshot)."""
        with self._lock:
            self.close()
            write_text_atomic(self.path, text)

    def accept(self, request_id: str, request: dict) -> None:
        """Journal one admitted request *before* the accept reply is sent."""
        self._append(
            {"op": "accept", "id": request_id, "request": request}, request_id
        )

    def finish(
        self, request_id: str, outcome: str, status: Optional[str] = None
    ) -> None:
        """Journal one request's final outcome (answered/cancelled/nacked)."""
        record = {"op": "close", "id": request_id, "outcome": outcome}
        if status is not None:
            record["status"] = status
        self._append(record, request_id)

    # ------------------------------------------------------------------
    def replay(self) -> RecoveryReport:
        """Parse the journal, tolerant of a torn tail and embedded garbage."""
        report = RecoveryReport()
        try:
            with self._lock:
                with open(self.path, "r", encoding="utf-8") as handle:
                    lines = handle.readlines()
        except OSError:
            return report
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                report.torn_lines += 1
                continue
            if not isinstance(record, dict):
                report.torn_lines += 1
                continue
            report.total_records += 1
            op = record.get("op")
            request_id = str(record.get("id", ""))
            if op == "accept" and request_id:
                report.open_requests[request_id] = record.get("request") or {}
            elif op == "close" and request_id:
                # a close without an accept is legal: its accept line may be
                # the one the tear destroyed
                if report.open_requests.pop(request_id, None) is not None:
                    report.closed += 1
        return report

    def compact(self, keep_open: bool = True) -> RecoveryReport:
        """Atomically rewrite the journal keeping only open requests.

        Closed accept/close pairs are history — dropping them bounds the
        file and the next replay.  Returns the pre-compaction report.
        """
        with self._lock:
            report = self.replay()
            self.close()
            lines: List[str] = []
            if keep_open:
                for request_id, request in report.open_requests.items():
                    lines.append(
                        json.dumps(
                            {
                                "format": JOURNAL_FORMAT,
                                "op": "accept",
                                "id": request_id,
                                "t": time.time(),
                                "request": request,
                            },
                            separators=(",", ":"),
                        )
                    )
            write_text_atomic(self.path, "".join(line + "\n" for line in lines))
        return report
