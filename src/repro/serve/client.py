"""Blocking client for the ``repro-serve-v1`` protocol.

One :class:`ServeClient` wraps one connection.  The protocol allows
pipelining (replies carry request ids), but this client keeps the simple
synchronous shape the CLI and the soak harness need: :meth:`verify` sends
one request and blocks until its ``result`` frame (matching by id, so a
server that interleaves other frames is handled).  Use one client per
thread for concurrency — that is exactly how the soak harness generates
load.

Failover: the client remembers every submitted-but-unanswered request (its
ids are journaled server-side the moment they were accepted).  When the
connection dies — reset, refused, EOF mid-frame — it reconnects with
bounded exponential backoff and resubmits exactly those pending ids, so a
server restart, a standby takeover, or a router failover is one transparent
hiccup instead of an exception.  Resubmission is idempotent: the id is
unchanged, so a journal-recovering or coalescing server folds the
resubmitted request into work it already knows.  Set ``reconnect=False``
for the old fail-fast behavior.
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Dict, Optional

from repro.serve.protocol import (
    OP_DRAIN,
    OP_PING,
    OP_PROGRESS,
    OP_STATS,
    OP_STATUS,
    OP_VERIFY,
    ProtocolError,
    read_frame_blocking,
    write_frame_blocking,
)


class ServeError(RuntimeError):
    """The server rejected a request or the connection broke mid-call."""

    def __init__(self, message: str, reply: Optional[dict] = None) -> None:
        super().__init__(message)
        self.reply = reply


class ConnectionClosed(ServeError):
    """The server went away mid-conversation (EOF or reset)."""


#: connection-level failures the reconnect loop absorbs
_RETRYABLE = (
    ConnectionClosed,
    ConnectionResetError,
    ConnectionRefusedError,
    ConnectionAbortedError,
    BrokenPipeError,
    ProtocolError,
    OSError,
)

#: rejection reasons worth waiting out with a backoff-and-resubmit: a
#: standby answers ``standby`` until its takeover window promotes it
_RETRYABLE_REJECTIONS = ("standby",)


class ServeClient:
    """One blocking connection to a verify server (unix socket or TCP)."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        timeout: Optional[float] = None,
        reconnect: bool = True,
        max_retries: int = 6,
        backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 2.0,
    ) -> None:
        if not socket_path and not host:
            raise ValueError("client needs a unix socket path or a TCP host")
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._timeout = timeout
        self.reconnect = reconnect
        self.max_retries = max(1, max_retries)
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        #: frames read while waiting for a different request's reply — the
        #: server answers in completion order, a pipelining caller reads in
        #: submission order, so out-of-order results are parked here by id
        self._parked: dict = {}
        #: submitted-but-unanswered requests by id: exactly what a
        #: reconnect must resubmit (the server journaled their accepts)
        self._pending: Dict[str, dict] = {}
        #: observer for streamed ``progress`` frames (never parked)
        self.on_progress = None
        self.reconnects = 0
        self.resubmitted = 0
        self._socket = None
        self._stream = None
        self._connect()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def _connect(self) -> None:
        if self._socket_path:
            self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._socket.settimeout(self._timeout)
            self._socket.connect(self._socket_path)
        else:
            self._socket = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        self._stream = self._socket.makefile("rwb")
        self.hello = self._read()
        if not isinstance(self.hello, dict) or "protocol" not in self.hello:
            raise ProtocolError(f"server sent no hello frame: {self.hello!r}")

    def close(self) -> None:
        for closer in (self._stream, self._socket):
            if closer is None:
                continue
            try:
                closer.close()
            except (OSError, ValueError):
                pass

    # ------------------------------------------------------------------
    def _recover(self, error: BaseException) -> None:
        """Reconnect with bounded exponential backoff, resubmit pending ids.

        Raises :class:`ServeError` when every retry fails; otherwise the
        connection is fresh and every journaled-unanswered request has been
        resubmitted under its original id.
        """
        if not self.reconnect:
            raise error
        self.close()
        delay = self.backoff_s
        last: BaseException = error
        for _ in range(self.max_retries):
            time.sleep(delay)
            delay = min(delay * self.backoff_factor, self.max_backoff_s)
            try:
                self._connect()
            except _RETRYABLE as connect_error:
                last = connect_error
                continue
            self.reconnects += 1
            try:
                for request in list(self._pending.values()):
                    write_frame_blocking(self._stream, request)
                    self.resubmitted += 1
            except _RETRYABLE as resubmit_error:
                last = resubmit_error
                self.close()
                continue
            return
        raise ServeError(
            f"reconnect failed after {self.max_retries} attempt(s): {last}"
        ) from last

    # ------------------------------------------------------------------
    def _read(self) -> dict:
        frame = read_frame_blocking(self._stream)
        if frame is None:
            raise ConnectionClosed("server closed the connection")
        if not isinstance(frame, dict):
            raise ProtocolError(f"expected an object frame, got {frame!r}")
        return frame

    def _send(self, document: dict) -> None:
        write_frame_blocking(self._stream, document)

    def _read_until(self, op: str, request_id: Optional[str] = None) -> dict:
        if request_id is not None:
            parked = self._parked.pop((op, request_id), None)
            if parked is not None:
                return parked
        while True:
            frame = self._read()
            frame_op = frame.get("op")
            if frame_op == OP_PROGRESS:
                # liveness ticks are ephemeral: observe, never park
                if self.on_progress is not None:
                    self.on_progress(frame)
                continue
            if frame_op == "result":
                self._pending.pop(frame.get("id"), None)
            if frame_op == op and (
                request_id is None or frame.get("id") == request_id
            ):
                return frame
            if frame_op == "rejected" and (
                request_id is None or frame.get("id") == request_id
            ):
                self._pending.pop(frame.get("id"), None)
                raise ServeError(
                    f"request rejected: {frame.get('reason')}", reply=frame
                )
            if frame.get("ok") is False:
                raise ServeError(str(frame.get("error")), reply=frame)
            other_id = frame.get("id")
            if other_id is not None and frame_op:
                self._parked[(frame_op, other_id)] = frame

    # ------------------------------------------------------------------
    def submit(self, request: dict) -> dict:
        """Send one verify request; returns the ``accepted`` frame.

        Raises :class:`ServeError` on rejection (``reply["reason"]`` is
        ``"overloaded"`` under admission control, ``"draining"`` during
        shutdown).  Follow with :meth:`result` to block for the verdict.
        A broken connection is reconnected and the request resubmitted
        under the same id (see the module docstring).
        """
        request = dict(request)
        request["op"] = OP_VERIFY
        request.setdefault("id", f"req-{uuid.uuid4().hex[:12]}")
        request_id = request["id"]
        self._pending[request_id] = request
        sent = False
        rejections = 0
        while True:
            try:
                if not sent:
                    self._send(request)
                    sent = True
                return self._read_until("accepted", request_id)
            except ServeError as error:
                if isinstance(error, ConnectionClosed):
                    self._recover(error)
                    sent = True  # _recover resubmitted every pending id
                    continue
                reply = error.reply or {}
                if (
                    self.reconnect
                    and reply.get("reason") in _RETRYABLE_REJECTIONS
                    and rejections + 1 < self.max_retries
                ):
                    # a standby holds the fort before takeover: back off
                    # until promotion opens admissions
                    rejections += 1
                    time.sleep(
                        min(
                            self.backoff_s * self.backoff_factor ** rejections,
                            self.max_backoff_s,
                        )
                    )
                    self._pending[request_id] = request
                    sent = False
                    continue
                self._pending.pop(request_id, None)
                raise
            except _RETRYABLE as error:
                self._recover(error)
                sent = True
                continue

    def result(self, request_id: str) -> dict:
        """Block for the ``result`` frame of one accepted request."""
        while True:
            try:
                reply = self._read_until("result", request_id)
                self._pending.pop(request_id, None)
                return reply
            except ConnectionClosed as error:
                if request_id not in self._pending:
                    # answered before we could finish reading: the parked
                    # copy (if any) was consumed above; nothing to wait on
                    raise
                self._recover(error)
            except ServeError as error:
                reply = error.reply or {}
                if (
                    self.reconnect
                    and reply.get("reason") in _RETRYABLE_REJECTIONS
                    and reply.get("id") == request_id
                ):
                    # the failover target is still a standby; resubmit once
                    # it promotes
                    request = self._pending.get(request_id)
                    if request is None:
                        raise
                    time.sleep(min(self.backoff_s * 4, self.max_backoff_s))
                    self._pending[request_id] = request
                    self._send(request)
                    continue
                raise
            except _RETRYABLE as error:
                self._recover(error)

    def verify(self, **request) -> dict:
        """Submit one request and block for its result (the common path)."""
        accepted = self.submit(request)
        return self.result(accepted["id"])

    def ping(self) -> dict:
        self._send({"op": OP_PING})
        return self._read_until("pong")

    def stats(self) -> dict:
        self._send({"op": OP_STATS})
        return self._read_until("stats")["stats"]

    def status(self) -> dict:
        """The richer ``status`` document (role, replication, counters)."""
        self._send({"op": OP_STATUS})
        return self._read_until("status")["status"]

    def heartbeat(self) -> dict:
        self._send({"op": "heartbeat"})
        return self._read_until("heartbeat-reply")

    def drain(self) -> dict:
        """Ask the server to drain and shut down gracefully."""
        self._send({"op": OP_DRAIN})
        return self._read_until("draining")
