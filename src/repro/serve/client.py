"""Blocking client for the ``repro-serve-v1`` protocol.

One :class:`ServeClient` wraps one connection.  The protocol allows
pipelining (replies carry request ids), but this client keeps the simple
synchronous shape the CLI and the soak harness need: :meth:`verify` sends
one request and blocks until its ``result`` frame (matching by id, so a
server that interleaves other frames is handled).  Use one client per
thread for concurrency — that is exactly how the soak harness generates
load.
"""

from __future__ import annotations

import socket
import uuid
from typing import Optional

from repro.serve.protocol import (
    OP_DRAIN,
    OP_PING,
    OP_STATS,
    OP_VERIFY,
    ProtocolError,
    read_frame_blocking,
    write_frame_blocking,
)


class ServeError(RuntimeError):
    """The server rejected a request or the connection broke mid-call."""

    def __init__(self, message: str, reply: Optional[dict] = None) -> None:
        super().__init__(message)
        self.reply = reply


class ServeClient:
    """One blocking connection to a verify server (unix socket or TCP)."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        timeout: Optional[float] = None,
    ) -> None:
        if socket_path:
            self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._socket.settimeout(timeout)
            self._socket.connect(socket_path)
        elif host:
            self._socket = socket.create_connection((host, port), timeout=timeout)
        else:
            raise ValueError("client needs a unix socket path or a TCP host")
        self._stream = self._socket.makefile("rwb")
        #: frames read while waiting for a different request's reply — the
        #: server answers in completion order, a pipelining caller reads in
        #: submission order, so out-of-order results are parked here by id
        self._parked: dict = {}
        self.hello = self._read()
        if not isinstance(self.hello, dict) or "protocol" not in self.hello:
            raise ProtocolError(f"server sent no hello frame: {self.hello!r}")

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def close(self) -> None:
        try:
            self._stream.close()
        except (OSError, ValueError):
            pass
        try:
            self._socket.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _read(self) -> dict:
        frame = read_frame_blocking(self._stream)
        if frame is None:
            raise ServeError("server closed the connection")
        if not isinstance(frame, dict):
            raise ProtocolError(f"expected an object frame, got {frame!r}")
        return frame

    def _send(self, document: dict) -> None:
        write_frame_blocking(self._stream, document)

    def _read_until(self, op: str, request_id: Optional[str] = None) -> dict:
        if request_id is not None:
            parked = self._parked.pop((op, request_id), None)
            if parked is not None:
                return parked
        while True:
            frame = self._read()
            if frame.get("op") == op and (
                request_id is None or frame.get("id") == request_id
            ):
                return frame
            if frame.get("op") == "rejected" and (
                request_id is None or frame.get("id") == request_id
            ):
                raise ServeError(
                    f"request rejected: {frame.get('reason')}", reply=frame
                )
            if frame.get("ok") is False:
                raise ServeError(str(frame.get("error")), reply=frame)
            other_id = frame.get("id")
            if other_id is not None and frame.get("op"):
                self._parked[(frame["op"], other_id)] = frame

    # ------------------------------------------------------------------
    def submit(self, request: dict) -> dict:
        """Send one verify request; returns the ``accepted`` frame.

        Raises :class:`ServeError` on rejection (``reply["reason"]`` is
        ``"overloaded"`` under admission control, ``"draining"`` during
        shutdown).  Follow with :meth:`result` to block for the verdict.
        """
        request = dict(request)
        request["op"] = OP_VERIFY
        request.setdefault("id", f"req-{uuid.uuid4().hex[:12]}")
        self._send(request)
        return self._read_until("accepted", request["id"])

    def result(self, request_id: str) -> dict:
        """Block for the ``result`` frame of one accepted request."""
        return self._read_until("result", request_id)

    def verify(self, **request) -> dict:
        """Submit one request and block for its result (the common path)."""
        accepted = self.submit(request)
        return self.result(accepted["id"])

    def ping(self) -> dict:
        self._send({"op": OP_PING})
        return self._read_until("pong")

    def stats(self) -> dict:
        self._send({"op": OP_STATS})
        return self._read_until("stats")["stats"]

    def drain(self) -> dict:
        """Ask the server to drain and shut down gracefully."""
        self._send({"op": OP_DRAIN})
        return self._read_until("draining")
