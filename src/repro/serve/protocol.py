"""The ``repro-serve-v1`` wire protocol: length-prefixed JSON frames.

One frame is::

    <decimal byte length of payload>\\n
    <payload: one UTF-8 JSON document>\\n

The explicit length prefix makes framing independent of the payload's
content (embedded newlines in strings are fine) and lets the reader bound
its allocation *before* reading the body — a garbage or hostile length is
rejected without buffering anything.  The trailing newline keeps captures
of the stream human-readable (``socat`` on the socket shows one JSON
document per frame).

Conversation shape: the server sends a ``hello`` frame on connect, then the
client sends request frames and reads reply frames.  Replies to ``verify``
are asynchronous (an immediate ``accepted``/``rejected``, then a ``result``
frame when the computation finishes) and carry the request ``id`` so a
client may pipeline.  Both async (server) and blocking (client) helpers
live here so the two sides cannot drift apart.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

#: protocol identifier sent in the server's hello frame
PROTOCOL = "repro-serve-v1"

#: hard bound on one frame's payload; a length prefix beyond this is a
#: protocol error, not an allocation
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: request operations a server understands
OP_VERIFY = "verify"
OP_PING = "ping"
OP_STATS = "stats"
OP_DRAIN = "drain"
OP_STATUS = "status"
OP_HEARTBEAT = "heartbeat"

#: replication operations (standby <-> primary, over the same framing)
OP_REPL_SUBSCRIBE = "repl-subscribe"
OP_REPL_SNAPSHOT = "repl-snapshot"
OP_REPL_APPEND = "repl-append"
OP_REPL_ACK = "repl-ack"
OP_REPL_HEARTBEAT = "repl-heartbeat"

#: server -> client liveness frames for a long-running request
OP_PROGRESS = "progress"


class ProtocolError(ValueError):
    """A malformed frame: bad length prefix, oversized payload, non-JSON body."""


def encode_frame(document: object) -> bytes:
    """Serialize one document into a wire frame."""
    payload = json.dumps(document, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame payload of {len(payload)} bytes exceeds cap")
    return b"%d\n%s\n" % (len(payload), payload)


def _parse_length(line: bytes) -> int:
    try:
        length = int(line.strip().decode("ascii"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"bad frame length prefix {line!r}") from error
    if length < 0 or length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} out of range")
    return length


def _parse_payload(payload: bytes) -> object:
    try:
        return json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"frame payload is not JSON: {error}") from error


async def read_frame(reader: asyncio.StreamReader) -> Optional[object]:
    """Read one frame; ``None`` on clean EOF before a length prefix."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid length prefix") from error
    length = _parse_length(line)
    try:
        body = await reader.readexactly(length + 1)  # payload + trailing \n
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid payload") from error
    return _parse_payload(body[:length])


async def write_frame(writer: asyncio.StreamWriter, document: object) -> None:
    writer.write(encode_frame(document))
    await writer.drain()


# ---------------------------------------------------------------------------
# blocking (socket-file) variants for the synchronous client
# ---------------------------------------------------------------------------


def read_frame_blocking(stream) -> Optional[object]:
    """Read one frame from a blocking binary file object (``socket.makefile``)."""
    line = stream.readline(32)
    if not line:
        return None
    if not line.endswith(b"\n"):
        raise ProtocolError(f"bad frame length prefix {line!r}")
    length = _parse_length(line)
    body = stream.read(length + 1)
    if body is None or len(body) < length + 1:
        raise ProtocolError("connection closed mid payload")
    return _parse_payload(body[:length])


def write_frame_blocking(stream, document: object) -> None:
    stream.write(encode_frame(document))
    stream.flush()


# ---------------------------------------------------------------------------
# address specs — one textual form shared by the router, the standby
# replica, and the CLIs: ``unix:/path``, a bare path, or ``host:port``
# ---------------------------------------------------------------------------


def parse_addr(spec: str) -> tuple:
    """Parse an address spec into ``(socket_path, host, port)``.

    ``unix:`` prefixes force a unix socket; otherwise a single trailing
    ``:<digits>`` means TCP and anything else is a unix socket path.
    """
    spec = spec.strip()
    if spec.startswith("unix:"):
        return spec[len("unix:"):], None, 0
    if spec.startswith("tcp:"):
        spec = spec[len("tcp:"):]
        host, _, port = spec.rpartition(":")
        return None, host or "127.0.0.1", int(port)
    host, sep, port = spec.rpartition(":")
    if sep and port.isdigit() and "/" not in port:
        return None, host or "127.0.0.1", int(port)
    return spec, None, 0


def format_addr(socket_path=None, host=None, port=0) -> str:
    if socket_path:
        return f"unix:{socket_path}"
    return f"{host}:{port}"


async def open_addr(spec: str):
    """Open an asyncio connection to an address spec; ``(reader, writer)``."""
    socket_path, host, port = parse_addr(spec)
    if socket_path:
        return await asyncio.open_unix_connection(socket_path)
    return await asyncio.open_connection(host, port)
