"""Adaptive concurrency throttle driven by observed attempt latency.

The server's worker pool faces a classic feedback problem: more concurrent
supervised verifications raise throughput until the machine saturates, after
which every computation just runs slower (and closer to its deadline).  The
throttle closes the loop the way Scrapy's AutoThrottle does for request
delay: observe the latency of completed work, keep an exponentially-weighted
moving average, and steer concurrency toward the level where observed
latency sits at the configured target — shrink while latency is above
target, grow back while it is comfortably below.

Adjustments are deliberately coarse (±1, at most once per observation
window) so a single slow verification cannot collapse the pool, and the
concurrency is clamped to ``[min_concurrency, max_concurrency]`` so the
server never throttles itself to a standstill nor grows past the configured
pool.
"""

from __future__ import annotations

from typing import Dict, Optional


class AdaptiveThrottle:
    """EWMA-latency feedback controller for the worker-pool concurrency."""

    def __init__(
        self,
        min_concurrency: int = 1,
        max_concurrency: int = 4,
        target_latency_s: float = 5.0,
        alpha: float = 0.3,
        window: int = 4,
    ) -> None:
        if min_concurrency < 1 or max_concurrency < min_concurrency:
            raise ValueError("need 1 <= min_concurrency <= max_concurrency")
        self.min_concurrency = min_concurrency
        self.max_concurrency = max_concurrency
        self.target_latency_s = target_latency_s
        self.alpha = alpha
        self.window = max(1, window)
        self.concurrency = max_concurrency
        self.ewma_latency_s: Optional[float] = None
        self.observations = 0
        self.adjustments = 0
        self._since_adjust = 0

    def observe(self, latency_s: float) -> int:
        """Feed one completed computation's latency; returns the new target."""
        latency_s = max(0.0, float(latency_s))
        if self.ewma_latency_s is None:
            self.ewma_latency_s = latency_s
        else:
            self.ewma_latency_s += self.alpha * (latency_s - self.ewma_latency_s)
        self.observations += 1
        self._since_adjust += 1
        if self._since_adjust < self.window:
            return self.concurrency
        if self.ewma_latency_s > self.target_latency_s:
            proposed = self.concurrency - 1
        elif self.ewma_latency_s < self.target_latency_s / 2.0:
            proposed = self.concurrency + 1
        else:
            return self.concurrency
        proposed = min(self.max_concurrency, max(self.min_concurrency, proposed))
        if proposed != self.concurrency:
            self.concurrency = proposed
            self.adjustments += 1
        self._since_adjust = 0
        return self.concurrency

    def snapshot(self) -> Dict[str, object]:
        return {
            "concurrency": self.concurrency,
            "min": self.min_concurrency,
            "max": self.max_concurrency,
            "target_latency_s": self.target_latency_s,
            "ewma_latency_s": self.ewma_latency_s,
            "observations": self.observations,
            "adjustments": self.adjustments,
        }
