"""Adaptive concurrency throttle driven by observed attempt latency.

The server's worker pool faces a classic feedback problem: more concurrent
supervised verifications raise throughput until the machine saturates, after
which every computation just runs slower (and closer to its deadline).  The
throttle closes the loop the way Scrapy's AutoThrottle does for request
delay: observe the latency of completed work, keep an exponentially-weighted
moving average, and steer concurrency toward the level where observed
latency sits at the configured target — shrink while latency is above
target, grow back while it is comfortably below.

Adjustments are deliberately coarse (±1, at most once per observation
window) so a single slow verification cannot collapse the pool, and the
concurrency is clamped to ``[min_concurrency, max_concurrency]`` so the
server never throttles itself to a standstill nor grows past the configured
pool.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


class AdaptiveThrottle:
    """EWMA-latency feedback controller for the worker-pool concurrency."""

    def __init__(
        self,
        min_concurrency: int = 1,
        max_concurrency: int = 4,
        target_latency_s: float = 5.0,
        alpha: float = 0.3,
        window: int = 4,
        idle_window_s: Optional[float] = None,
    ) -> None:
        if min_concurrency < 1 or max_concurrency < min_concurrency:
            raise ValueError("need 1 <= min_concurrency <= max_concurrency")
        self.min_concurrency = min_concurrency
        self.max_concurrency = max_concurrency
        self.target_latency_s = target_latency_s
        self.alpha = alpha
        self.window = max(1, window)
        #: a window that closes with zero completed requests; the stale EWMA
        #: sample must not keep steering, so it decays toward target instead
        self.idle_window_s = (
            idle_window_s if idle_window_s is not None else max(1.0, target_latency_s)
        )
        self.concurrency = max_concurrency
        self.ewma_latency_s: Optional[float] = None
        self.observations = 0
        self.adjustments = 0
        self.idle_windows = 0
        self._since_adjust = 0
        self._last_event = time.monotonic()

    def observe(self, latency_s: float) -> int:
        """Feed one completed computation's latency; returns the new target."""
        latency_s = max(0.0, float(latency_s))
        self._last_event = time.monotonic()
        if self.ewma_latency_s is None:
            self.ewma_latency_s = latency_s
        else:
            self.ewma_latency_s += self.alpha * (latency_s - self.ewma_latency_s)
        self.observations += 1
        self._since_adjust += 1
        if self._since_adjust < self.window:
            return self.concurrency
        return self._adjust()

    def tick(self, now: Optional[float] = None) -> int:
        """Close an observation window that saw zero completed requests.

        Without this, a burst of slow work followed by silence leaves the
        EWMA pinned at the stale overload sample and the pool shrunk forever.
        An idle window instead decays the EWMA toward the target, so the
        stale sample loses its grip and fresh (fast) observations can grow
        the pool back promptly.
        """
        now = time.monotonic() if now is None else now
        if now - self._last_event < self.idle_window_s:
            return self.concurrency
        self._last_event = now
        self.idle_windows += 1
        if self.ewma_latency_s is None:
            return self.concurrency
        self.ewma_latency_s += self.alpha * (self.target_latency_s - self.ewma_latency_s)
        return self._adjust()

    def _adjust(self) -> int:
        if self.ewma_latency_s > self.target_latency_s:
            proposed = self.concurrency - 1
        elif self.ewma_latency_s < self.target_latency_s / 2.0:
            proposed = self.concurrency + 1
        else:
            return self.concurrency
        proposed = min(self.max_concurrency, max(self.min_concurrency, proposed))
        if proposed != self.concurrency:
            self.concurrency = proposed
            self.adjustments += 1
        self._since_adjust = 0
        return self.concurrency

    def snapshot(self) -> Dict[str, object]:
        return {
            "concurrency": self.concurrency,
            "min": self.min_concurrency,
            "max": self.max_concurrency,
            "target_latency_s": self.target_latency_s,
            "ewma_latency_s": self.ewma_latency_s,
            "observations": self.observations,
            "adjustments": self.adjustments,
            "idle_windows": self.idle_windows,
        }


#: historical name for the controller (Scrapy heritage); kept as an alias so
#: docs and operator muscle memory both resolve
AutoThrottle = AdaptiveThrottle
