"""Verification-as-a-service: a long-lived server over the batch machinery.

The batch runner amortizes warm state (blasted frame templates, learned
priors, the certificate store) over one sweep; :mod:`repro.serve` amortizes
it over *a process lifetime*.  A :class:`repro.serve.server.VerifyServer`
listens on a unix socket (or TCP), admits requests through a bounded
priority queue, coalesces identical in-flight queries by cache key, runs
each computation through the supervised single-unit pipeline
(:func:`repro.engines.batch.run_supervised_unit`) with the request deadline
threaded all the way into the solver's cooperative interrupt, and journals
every accepted request so a crash can never silently swallow one.

Wire protocol: ``repro-serve-v1`` (length-prefixed JSON lines, see
:mod:`repro.serve.protocol`).  Clients: :class:`repro.serve.client.ServeClient`
or ``repro-verify --server``.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.journal import RequestJournal
from repro.serve.protocol import PROTOCOL, ProtocolError
from repro.serve.queues import PRIORITIES, BoundedPriorityQueue
from repro.serve.server import ServerConfig, VerifyServer
from repro.serve.throttle import AdaptiveThrottle

__all__ = [
    "PROTOCOL",
    "PRIORITIES",
    "AdaptiveThrottle",
    "BoundedPriorityQueue",
    "ProtocolError",
    "RequestJournal",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "VerifyServer",
]
