"""Verification-as-a-service: a long-lived server over the batch machinery.

The batch runner amortizes warm state (blasted frame templates, learned
priors, the certificate store) over one sweep; :mod:`repro.serve` amortizes
it over *a process lifetime*.  A :class:`repro.serve.server.VerifyServer`
listens on a unix socket (or TCP), admits requests through a bounded
priority queue, coalesces identical in-flight queries by cache key, runs
each computation through the supervised single-unit pipeline
(:func:`repro.engines.batch.run_supervised_unit`) with the request deadline
threaded all the way into the solver's cooperative interrupt, and journals
every accepted request so a crash can never silently swallow one.

Fleet mode: a primary streams its journal to hot standbys
(:mod:`repro.serve.replica`) so a SIGKILL becomes a takeover instead of a
restart, and a :class:`repro.serve.router.VerifyRouter` front process
health-checks members, shards requests by certificate-store key prefix and
fails clients over transparently.

Wire protocol: ``repro-serve-v1`` (length-prefixed JSON lines, see
:mod:`repro.serve.protocol`).  Clients: :class:`repro.serve.client.ServeClient`
or ``repro-verify --server``.
"""

from repro.serve.client import ConnectionClosed, ServeClient, ServeError
from repro.serve.journal import RequestJournal
from repro.serve.protocol import PROTOCOL, ProtocolError, format_addr, parse_addr
from repro.serve.queues import PRIORITIES, BoundedPriorityQueue
from repro.serve.replica import ReplicationManager, StandbyReplica
from repro.serve.router import MemberSpec, RouterConfig, VerifyRouter
from repro.serve.server import ServerConfig, VerifyServer
from repro.serve.throttle import AdaptiveThrottle, AutoThrottle

__all__ = [
    "PROTOCOL",
    "PRIORITIES",
    "AdaptiveThrottle",
    "AutoThrottle",
    "BoundedPriorityQueue",
    "ConnectionClosed",
    "MemberSpec",
    "ProtocolError",
    "ReplicationManager",
    "RequestJournal",
    "RouterConfig",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "StandbyReplica",
    "VerifyRouter",
    "VerifyServer",
    "format_addr",
    "parse_addr",
]
