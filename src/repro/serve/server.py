"""The long-lived verification server: warm state + admission + supervision.

One :class:`VerifyServer` process keeps everything that is expensive to
build — blasted frame-template libraries, learned engine priors, the
validated-certificate cache — warm across requests, so the marginal cost of
a repeated query is one re-validation instead of one verification.  Around
that warm core sit the robustness mechanisms this module exists for:

* **admission control** — a bounded priority queue
  (:class:`repro.serve.queues.BoundedPriorityQueue`); when it is full the
  marginal request gets an immediate ``rejected: overloaded`` reply instead
  of unbounded queueing;
* **coalescing** — identical in-flight queries (same cache key) share one
  computation; N clients, one supervised run, one cache store;
* **deadline propagation** — a request's ``deadline_s`` becomes the
  supervised unit's wall budget, which the ladder threads into every
  engine's timeout and the SAT solver's cooperative interrupt;
* **adaptive throttling** — observed computation latency steers the number
  of concurrently supervised units
  (:class:`repro.serve.throttle.AdaptiveThrottle`);
* **cancellation** — a client disconnect removes its waiter; when a
  computation has no waiters left its abort event fires and the supervisor
  reaps the worker;
* **crash safety** — every accepted request is journaled before the accept
  reply (:class:`repro.serve.journal.RequestJournal`); a restarted server
  replays the journal and NACKs (or requeues) accepted-but-unanswered
  requests, so an accept can never be silently lost;
* **graceful drain** — SIGTERM/SIGINT (or the ``drain`` op) stops
  admissions, finishes everything accepted, compacts the journal and writes
  the telemetry trace before exit.

The supervised computations run in worker *processes* (via
:func:`repro.engines.batch.run_supervised_unit`), driven from executor
threads; the asyncio loop only ever does protocol and bookkeeping work.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache import ResultCache
from repro.cache.key import cache_key
from repro.engines.batch import run_supervised_unit
from repro.engines.portfolio import (
    VerificationTask,
    default_budget_ladder,
    learn_priors,
    warm_task_templates,
)
from repro.engines.result import Status, VerificationResult
from repro.obs import log as _log
from repro.obs import telemetry as _telemetry
from repro.faults import injection as _fault_injection
from repro.serve import journal as journal_mod
from repro.serve.journal import RequestJournal
from repro.serve.protocol import (
    OP_DRAIN,
    OP_HEARTBEAT,
    OP_PING,
    OP_PROGRESS,
    OP_REPL_ACK,
    OP_REPL_SUBSCRIBE,
    OP_STATS,
    OP_STATUS,
    OP_VERIFY,
    PROTOCOL,
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.serve.replica import ReplicationManager, StandbyReplica
from repro.serve.queues import BoundedPriorityQueue, QueueClosed, priority_value
from repro.serve.throttle import AdaptiveThrottle


@dataclass
class ServerConfig:
    """Everything a :class:`VerifyServer` needs to know at construction."""

    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    cache_dir: Optional[str] = None
    journal_path: Optional[str] = None
    max_queue: int = 16
    min_workers: int = 1
    max_workers: int = 2
    target_latency_s: float = 10.0
    default_deadline_s: float = 120.0
    attempt_timeout_s: Optional[float] = None
    representation: str = "word"
    certify: bool = False
    #: what to do with journaled accepted-but-unanswered requests on start:
    #: ``"nack"`` closes them as nacked (clients resubmit), ``"requeue"``
    #: recomputes them waiterless so the verdict lands in the cache
    recover: str = "nack"
    trace_path: Optional[str] = None
    fsync_journal: bool = False
    #: fleet role: a ``primary`` serves; a ``standby`` follows ``primary_addr``
    #: via journal replication and serves only after takeover
    role: str = "primary"
    #: stable member name for status/heartbeat/trace stitching
    server_id: Optional[str] = None
    #: address spec of the primary this standby follows (``unix:...``/host:port)
    primary_addr: Optional[str] = None
    #: continuous primary unreachability after which the standby promotes
    takeover_after_s: float = 3.0
    #: replication sync level: ``async`` or ``sync`` (ack-before-accept)
    sync_level: str = "async"
    #: sync level's bounded wait before degrading to async for one accept
    sync_timeout_s: float = 2.0
    #: cadence of ``progress`` liveness frames to waiting clients (0 = off)
    progress_interval_s: float = 2.0
    #: a running request with no computation progress for this long is
    #: declared wedged: its workers are killed and retried (None = off)
    progress_timeout_s: Optional[float] = None


class _Waiter:
    """One client's stake in a (possibly shared) computation."""

    __slots__ = ("request_id", "conn", "deadline")

    def __init__(self, request_id: str, conn: "_Connection", deadline: Optional[float]):
        self.request_id = request_id
        self.conn = conn
        self.deadline = deadline  # absolute monotonic, None = unbounded

    def remaining(self) -> Optional[float]:
        return None if self.deadline is None else self.deadline - time.monotonic()


class _Work:
    """One admitted computation: a cache key plus every waiter sharing it."""

    def __init__(
        self,
        key: str,
        task: VerificationTask,
        property_name: str,
        representation: str,
        bound: Optional[int],
        priority: int,
    ) -> None:
        self.key = key
        self.task = task
        self.property_name = property_name
        self.representation = representation
        self.bound = bound
        self.priority = priority
        self.waiters: List[_Waiter] = []
        self.abort = threading.Event()
        #: liveness kill switch: set by the monitor when streamed progress
        #: goes silent past the window; the supervisor kills and retries
        self.stall = threading.Event()
        self.running = False
        self.cancelled = False
        self.done = False
        self.recovered = False
        self.span = None
        self.admitted_t = time.monotonic()
        self.started_t: Optional[float] = None
        #: last *computation* progress (rung/bound), monotonic
        self.last_progress = time.monotonic()
        #: last progress frame of any kind sent to waiters, monotonic
        self.last_progress_sent = 0.0
        self.progress_events = 0
        self.stall_kills = 0


class _Connection:
    """Per-client connection state: serialized writes + pending requests."""

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.send_lock = asyncio.Lock()
        self.requests: Dict[str, _Work] = {}
        self.alive = True

    async def send(self, document: dict) -> bool:
        if not self.alive:
            return False
        try:
            async with self.send_lock:
                await write_frame(self.writer, document)
            return True
        except (ConnectionError, OSError):
            self.alive = False
            return False


class VerifyServer:
    """See the module docstring; one instance = one serving process."""

    def __init__(self, config: ServerConfig) -> None:
        if not config.socket_path and not config.host:
            raise ValueError("server needs a unix socket path or a TCP host")
        if config.role not in ("primary", "standby"):
            raise ValueError(f"unknown role {config.role!r}")
        if config.role == "standby" and not config.primary_addr:
            raise ValueError("a standby needs primary_addr to follow")
        self.config = config
        self.role = config.role
        self.server_id = config.server_id or (
            config.socket_path or f"{config.host}:{config.port}"
        )
        self.cache = (
            ResultCache(config.cache_dir) if config.cache_dir else None
        )
        self.journal = (
            RequestJournal(config.journal_path, fsync=config.fsync_journal)
            if config.journal_path
            else None
        )
        #: every server can feed standbys; the journal hook streams records
        self.replication = ReplicationManager(
            self,
            sync_level=config.sync_level,
            sync_timeout_s=config.sync_timeout_s,
        )
        if self.journal is not None:
            self.journal.on_record = self.replication.publish
        self.replica = (
            StandbyReplica(
                self,
                config.primary_addr,
                takeover_after_s=config.takeover_after_s,
                name=self.server_id,
            )
            if self.role == "standby"
            else None
        )
        self.queue = BoundedPriorityQueue(config.max_queue)
        self.throttle = AdaptiveThrottle(
            min_concurrency=config.min_workers,
            max_concurrency=config.max_workers,
            target_latency_s=config.target_latency_s,
        )
        self.priors = learn_priors()
        self.inflight: Dict[str, _Work] = {}
        self.active = 0
        self.draining = False
        self.recovery_report: Optional[dict] = None
        self.counters: Dict[str, int] = {
            "accepted": 0,
            "answered": 0,
            "cancelled": 0,
            "coalesced": 0,
            "computations": 0,
            "rejected_overloaded": 0,
            "rejected_draining": 0,
            "recovered_nacked": 0,
            "recovered_requeued": 0,
            "bad_requests": 0,
            "rejected_standby": 0,
            "takeovers": 0,
            "takeover_requeued": 0,
            "progress_frames": 0,
            "wedged_kills": 0,
            "heartbeats": 0,
            "heartbeats_blacked_out": 0,
        }
        self._shutdown = asyncio.Event()
        self._slot_free = asyncio.Event()
        self._work_done = asyncio.Event()
        self._connections: set = set()
        self._server_span = None
        self._listener = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def serve_forever(self) -> None:
        """Recover the journal, listen, serve until a drain, then shut down."""
        recorder = _telemetry.get_recorder()
        if recorder is not None:
            self._server_span = recorder.start_span(
                "serve.server",
                pid=os.getpid(),
                protocol=PROTOCOL,
                server_id=self.server_id,
                role=self.role,
            )
        loop = asyncio.get_running_loop()
        self._loop = loop
        self.replication.start(loop)
        if self.role == "primary":
            self._recover()
        # a standby's journal is a replica: recovery happens at promote()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, self.request_shutdown)
        if self.config.socket_path:
            if os.path.exists(self.config.socket_path):
                os.unlink(self.config.socket_path)
            self._listener = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path
            )
            where = self.config.socket_path
        else:
            self._listener = await asyncio.start_server(
                self._handle_connection, host=self.config.host, port=self.config.port
            )
            where = f"{self.config.host}:{self.config.port}"
        dispatcher = asyncio.create_task(self._dispatch())
        monitor = asyncio.create_task(self._monitor())
        replica_task = (
            asyncio.create_task(self.replica.run())
            if self.replica is not None
            else None
        )
        _log.info(
            f"repro-serve [{self.role}] {self.server_id!r} listening on "
            f"{where} ({PROTOCOL})"
        )
        await self._shutdown.wait()
        _log.info("repro-serve draining: admissions closed")
        self.draining = True
        self._listener.close()
        await self._listener.wait_closed()
        if replica_task is not None:
            replica_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await replica_task
        await self._drained()
        self.queue.close()
        await dispatcher
        monitor.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await monitor
        # close surviving client connections so their handler tasks end on a
        # clean EOF instead of being cancelled by loop teardown
        for conn in list(self._connections):
            conn.alive = False
            with contextlib.suppress(ConnectionError, OSError):
                conn.writer.close()
        await asyncio.sleep(0.05)
        self._finalize()

    def _finalize(self) -> None:
        if self.journal is not None:
            self.journal.compact()
            self.journal.close()
        if self._server_span is not None:
            self._server_span.finish(outcome="drained")
        recorder = _telemetry.get_recorder()
        if recorder is not None and self.config.trace_path:
            from repro.obs.export import write_trace

            write_trace(
                recorder,
                self.config.trace_path,
                meta={"role": "server", "pid": os.getpid()},
            )
        if self.config.socket_path and os.path.exists(self.config.socket_path):
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)
        _log.info("repro-serve drained: " + self._counters_line())

    def _counters_line(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()) if v)

    async def _drained(self) -> None:
        """Wait until every admitted request has been answered."""
        while len(self.queue) > 0 or self.active > 0 or self.inflight:
            self._work_done.clear()
            await self._work_done.wait()

    def _recover(self) -> None:
        """Replay the journal; NACK or requeue accepted-but-unanswered requests."""
        if self.journal is None:
            return
        report = self.journal.replay()
        self.recovery_report = report.to_json()
        for request_id, request in report.open_requests.items():
            if self.config.recover == "requeue" and request.get("design"):
                work = self._work_from_request(request)
                if work is not None:
                    work.recovered = True
                    if self.queue.try_put(work, work.priority):
                        self.inflight[work.key] = work
                        # the requeued recovery is a synthetic waiterless
                        # request: counting its accept here keeps the
                        # lifetime invariant accepted == answered + cancelled
                        self.counters["accepted"] += 1
                        self.counters["recovered_requeued"] += 1
                        self.journal.finish(request_id, journal_mod.REQUEUED)
                        continue
            self.counters["recovered_nacked"] += 1
            self.journal.finish(request_id, journal_mod.NACKED)
        if report.open_requests or report.torn_lines:
            _log.info(
                f"journal recovery: {len(report.open_requests)} open request(s) "
                f"({self.config.recover}), {report.torn_lines} torn line(s)"
            )
        _telemetry.counter("serve.recovered_open", len(report.open_requests))

    async def promote(self, reason: str = "") -> None:
        """Standby takeover: become primary, requeue the replicated journal.

        Every accepted-but-unanswered request in the replica journal is
        requeued as a waiterless recovery computation (the verdict lands in
        the shared cache), so clients resubmitting through the router — by
        the same journaled request id — coalesce onto work that is already
        running instead of starting over.  Admissions open the moment the
        role flips.
        """
        if self.role == "primary":
            return
        self.role = "primary"
        self.counters["takeovers"] += 1
        _telemetry.counter("serve.takeovers")
        _log.info(
            f"takeover: {self.server_id!r} promoting to primary"
            + (f" ({reason})" if reason else "")
        )
        if self.journal is None:
            return
        report = self.journal.replay()
        self.recovery_report = report.to_json()
        requeued = 0
        for request_id, request in report.open_requests.items():
            work = self._work_from_request(request) if request.get("design") else None
            if work is not None:
                existing = self.inflight.get(work.key)
                if existing is not None and not existing.done:
                    self.journal.finish(request_id, journal_mod.REQUEUED)
                    continue
                work.recovered = True
                if self.queue.try_put(work, work.priority):
                    self.inflight[work.key] = work
                    self.counters["accepted"] += 1
                    self.counters["takeover_requeued"] += 1
                    requeued += 1
                    self.journal.finish(request_id, journal_mod.REQUEUED)
                    continue
            self.counters["recovered_nacked"] += 1
            self.journal.finish(request_id, journal_mod.NACKED)
        _telemetry.counter("serve.takeover_requeued", requeued)
        _log.info(
            f"takeover complete: {requeued} open request(s) requeued, "
            f"{report.torn_lines} torn line(s)"
        )

    def _work_from_request(self, request: dict) -> Optional[_Work]:
        """Rebuild a :class:`_Work` from a journaled request document."""
        try:
            task = _task_from_request(request)
            system = task.load()
            property_name = _resolve_property(system, request.get("property"))
            representation = str(
                request.get("representation", self.config.representation)
            )
            key = cache_key(system, property_name, representation)
        except Exception:  # noqa: BLE001 - a stale journal must not wedge startup
            return None
        bound = request.get("bound")
        return _Work(
            key,
            task,
            property_name,
            representation,
            int(bound) if isinstance(bound, int) else None,
            priority_value(request.get("priority")),
        )

    # ------------------------------------------------------------------
    # connections and request admission
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        await conn.send(
            {
                "op": "hello",
                "protocol": PROTOCOL,
                "pid": os.getpid(),
                "role": self.role,
                "server_id": self.server_id,
            }
        )
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as error:
                    await conn.send({"ok": False, "error": str(error)})
                    break
                if request is None:
                    break
                if not isinstance(request, dict):
                    self.counters["bad_requests"] += 1
                    await conn.send({"ok": False, "error": "request must be an object"})
                    continue
                await self._handle_request(conn, request)
        except (ConnectionError, OSError):
            pass
        finally:
            conn.alive = False
            self._connections.discard(conn)
            self._forget_connection(conn)
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    def _forget_connection(self, conn: _Connection) -> None:
        """Client gone: cancel its stakes; abort orphaned computations."""
        self.replication.drop_connection(conn)
        for request_id, work in list(conn.requests.items()):
            work.waiters = [w for w in work.waiters if w.conn is not conn]
            self.counters["cancelled"] += 1
            _telemetry.counter("serve.cancelled")
            if self.journal is not None:
                self.journal.finish(request_id, journal_mod.CANCELLED)
            if not work.waiters and not work.recovered:
                if work.running:
                    work.abort.set()
                else:
                    work.cancelled = True
                    self.inflight.pop(work.key, None)
                    self._work_done.set()
        conn.requests.clear()

    async def _handle_request(self, conn: _Connection, request: dict) -> None:
        op = request.get("op")
        if op == OP_PING:
            await conn.send({"ok": True, "op": "pong", "draining": self.draining})
        elif op == OP_STATS:
            await conn.send({"ok": True, "op": "stats", "stats": self.stats()})
        elif op == OP_STATUS:
            await conn.send({"ok": True, "op": "status", "status": self.status_doc()})
        elif op == OP_HEARTBEAT:
            self.counters["heartbeats"] += 1
            if _fault_injection.heartbeat_blackout(
                f"{self.server_id}:{self.counters['heartbeats']}"
            ):
                # chaos: say nothing at all — the router must count a miss
                self.counters["heartbeats_blacked_out"] += 1
                return
            await conn.send(
                {
                    "ok": True,
                    "op": "heartbeat-reply",
                    "id": request.get("id"),
                    "role": self.role,
                    "server_id": self.server_id,
                    "draining": self.draining,
                    "queue_depth": len(self.queue),
                    "active": self.active,
                    "concurrency": self.throttle.concurrency,
                    "repl_lag": self.replication.lag(),
                    "accepted": self.counters["accepted"],
                    "answered": self.counters["answered"],
                    "cancelled": self.counters["cancelled"],
                    "uptime_s": round(time.monotonic() - self._started_at, 3),
                }
            )
        elif op == OP_REPL_SUBSCRIBE:
            await self.replication.handle_subscribe(conn, request)
        elif op == OP_REPL_ACK:
            self.replication.handle_ack(conn, request)
        elif op == OP_DRAIN:
            await conn.send({"ok": True, "op": "draining"})
            self.request_shutdown()
        elif op == OP_VERIFY:
            await self._admit(conn, request)
        else:
            self.counters["bad_requests"] += 1
            await conn.send({"ok": False, "error": f"unknown op {op!r}"})

    async def _admit(self, conn: _Connection, request: dict) -> None:
        request_id = str(request.get("id") or f"req-{uuid.uuid4().hex[:12]}")
        if self.role != "primary":
            self.counters["rejected_standby"] += 1
            _telemetry.counter("serve.rejected_standby")
            await conn.send(
                {"ok": False, "op": "rejected", "id": request_id,
                 "reason": "standby",
                 "primary": self.config.primary_addr or ""}
            )
            return
        if self.draining:
            self.counters["rejected_draining"] += 1
            _telemetry.counter("serve.rejected_draining")
            await conn.send(
                {"ok": False, "op": "rejected", "id": request_id,
                 "reason": "draining"}
            )
            return
        try:
            task = _task_from_request(request)
            # loading + key hashing is CPU work: keep it off the event loop
            system = await asyncio.to_thread(task.load)
            property_name = _resolve_property(system, request.get("property"))
            representation = str(
                request.get("representation", self.config.representation)
            )
            key = await asyncio.to_thread(
                cache_key, system, property_name, representation
            )
        except Exception as error:  # noqa: BLE001 - reply, don't die
            self.counters["bad_requests"] += 1
            await conn.send(
                {"ok": False, "op": "rejected", "id": request_id,
                 "reason": f"bad request: {error}"}
            )
            return

        deadline_s = request.get("deadline_s", self.config.default_deadline_s)
        deadline = (
            time.monotonic() + float(deadline_s) if deadline_s else None
        )
        waiter = _Waiter(request_id, conn, deadline)

        existing = self.inflight.get(key)
        if existing is not None and not existing.cancelled and not existing.done:
            # coalesce: share the in-flight computation, skip the queue
            existing.waiters.append(waiter)
            if existing.recovered:
                # a real client adopts the waiterless recovery: close the
                # synthetic stake so accepted == answered + cancelled holds
                existing.recovered = False
                self.counters["cancelled"] += 1
            conn.requests[request_id] = existing
            self.counters["accepted"] += 1
            self.counters["coalesced"] += 1
            _telemetry.counter("serve.coalesced")
            if self.journal is not None:
                self.journal.accept(request_id, _journal_doc(request))
                await self.replication.wait_synced()
            await conn.send(
                {"ok": True, "op": "accepted", "id": request_id,
                 "key": key, "coalesced": True}
            )
            return

        bound = request.get("bound")
        work = _Work(
            key,
            task,
            property_name,
            representation,
            int(bound) if isinstance(bound, int) else None,
            priority_value(request.get("priority")),
        )
        work.waiters.append(waiter)
        if not self.queue.try_put(work, work.priority):
            self.counters["rejected_overloaded"] += 1
            _telemetry.counter("serve.rejected_overloaded")
            await conn.send(
                {"ok": False, "op": "rejected", "id": request_id,
                 "reason": "overloaded", "queue_depth": len(self.queue)}
            )
            return
        self.inflight[key] = work
        conn.requests[request_id] = work
        self.counters["accepted"] += 1
        _telemetry.counter("serve.accepted")
        _telemetry.gauge("serve.queue_depth", len(self.queue))
        if self.journal is not None:
            self.journal.accept(request_id, _journal_doc(request))
            # sync level: the accept a client sees is one a standby can
            # already honor after takeover
            await self.replication.wait_synced()
        await conn.send(
            {"ok": True, "op": "accepted", "id": request_id,
             "key": key, "coalesced": False}
        )

    # ------------------------------------------------------------------
    # dispatch and computation
    # ------------------------------------------------------------------
    async def _dispatch(self) -> None:
        while True:
            try:
                work = await self.queue.get()
            except QueueClosed:
                return
            _telemetry.gauge("serve.queue_depth", len(self.queue))
            if work.cancelled:
                continue
            while self.active >= self.throttle.concurrency:
                self._slot_free.clear()
                await self._slot_free.wait()
            self.active += 1
            asyncio.create_task(self._run_work(work))

    async def _run_work(self, work: _Work) -> None:
        try:
            work.running = True
            work.started_t = time.monotonic()
            work.last_progress = work.started_t
            recorder = _telemetry.get_recorder()
            if recorder is not None:
                work.span = recorder.start_span(
                    "serve.request",
                    parent=self._server_span,
                    key=work.key,
                    property=work.property_name,
                    waiters=len(work.waiters),
                    server_id=self.server_id,
                    # the cross-box stitch key: one request id names this
                    # computation on every box that touched it
                    request=(work.waiters[0].request_id if work.waiters else ""),
                    requests=[w.request_id for w in work.waiters],
                )
            timeout = _pool_deadline(work)
            started = time.monotonic()
            if timeout is not None and timeout <= 0:
                result = VerificationResult(
                    Status.TIMEOUT,
                    "serve",
                    work.property_name,
                    reason="deadline exceeded while queued",
                )
                source = "deadline"
            else:
                result, source = await asyncio.to_thread(
                    self._compute, work, timeout
                )
                self.throttle.observe(time.monotonic() - started)
                _telemetry.gauge(
                    "serve.concurrency", self.throttle.concurrency
                )
            if work.span is not None:
                work.span.finish(outcome=f"{result.status}:{source}")
            await self._answer(work, result, source)
        finally:
            self.inflight.pop(work.key, None)
            self.active -= 1
            self._slot_free.set()
            self._work_done.set()

    def _compute(self, work: _Work, timeout: Optional[float]):
        """Run one computation in this executor thread (workers fork from here)."""
        recorder = _telemetry.get_recorder()
        scope = (
            recorder.under(work.span)
            if recorder is not None and work.span is not None
            else contextlib.nullcontext()
        )
        with scope:
            self.counters["computations"] += 1
            _telemetry.counter("serve.computations")
            system = work.task.load()
            warm_task_templates(work.task, (work.representation,))
            if self.cache is not None:
                lookup = self.cache.lookup(
                    system, work.property_name, work.representation
                )
                if lookup.hit:
                    return lookup.result, "cache"
            rungs = default_budget_ladder(
                (work.representation,),
                bound=work.bound,
                timeout=timeout,
                priors=self.priors,
            )
            result, _outcome = run_supervised_unit(
                work.task,
                work.property_name,
                rungs,
                timeout=timeout,
                attempt_timeout=self.config.attempt_timeout_s,
                certify=self.config.certify,
                abort=work.abort,
                stall=work.stall,
                on_event=self._supervision_observer(work),
            )
            if self.cache is not None and result.is_definitive:
                self.cache.store(
                    system,
                    work.property_name,
                    work.representation,
                    result,
                    design=work.task.name,
                )
            return result, "computed"

    async def _answer(self, work: _Work, result: VerificationResult, source: str):
        # no coalescer may attach once the reply fan-out starts: the waiter
        # snapshot below is the complete audience for this computation
        work.done = True
        waiters = list(work.waiters)
        work.waiters.clear()
        validated = None
        if source == "cache":
            validated = True
        elif self.cache is not None and result.is_definitive:
            # either the in-ladder --certify gate (detail["certified"]) or an
            # explicit validation record marks the verdict as validated
            validated = bool(
                isinstance(result.detail, dict)
                and (
                    result.detail.get("certified") is True
                    or result.detail.get("validation", {}).get("ok")
                )
            ) or None
        reply_base = {
            "ok": True,
            "op": "result",
            "key": work.key,
            "status": result.status,
            "engine": result.engine,
            "property": result.property_name,
            "runtime_s": round(result.runtime or 0.0, 6),
            "source": source,
            "reason": result.reason or "",
            "coalesced_with": len(waiters),
        }
        if validated is not None:
            reply_base["validated"] = validated
        if result.counterexample is not None:
            reply_base["counterexample_steps"] = len(result.counterexample.steps)
        for waiter in waiters:
            waiter.conn.requests.pop(waiter.request_id, None)
            self.counters["answered"] += 1
            _telemetry.counter("serve.answered")
            if self.journal is not None:
                self.journal.finish(
                    waiter.request_id, journal_mod.ANSWERED, status=result.status
                )
            await waiter.conn.send(dict(reply_base, id=waiter.request_id))
        if work.recovered and not waiters:
            # a requeued recovery has no client; the verdict went to the cache
            self.counters["answered"] += 1

    # ------------------------------------------------------------------
    # streamed progress and liveness
    # ------------------------------------------------------------------
    def _supervision_observer(self, work: _Work):
        """Event callback for one computation's supervisor (executor thread).

        Progress-bearing events reset the work's liveness clock and are
        forwarded to every waiter as ``progress`` frames; the hop onto the
        event loop goes through ``call_soon_threadsafe`` because the
        supervisor runs in a worker thread.
        """
        loop = self._loop

        def observer(event: dict) -> None:
            name = event.get("event")
            if name in ("progress", "attempt", "retry", "stall-killed", "degraded"):
                work.last_progress = time.monotonic()
                work.progress_events += 1
                doc = {
                    key: value
                    for key, value in event.items()
                    if key not in ("event",)
                    and isinstance(value, (int, float, str, bool))
                }
                doc["kind"] = name
                if loop is not None and not loop.is_closed():
                    loop.call_soon_threadsafe(self._fan_out_progress, work, doc)

        return observer

    def _fan_out_progress(self, work: _Work, doc: dict) -> None:
        if work.done or not work.waiters:
            return
        work.last_progress_sent = time.monotonic()
        elapsed = round(time.monotonic() - (work.started_t or work.admitted_t), 3)
        for waiter in list(work.waiters):
            frame = {
                "ok": True,
                "op": OP_PROGRESS,
                "id": waiter.request_id,
                "key": work.key,
                "elapsed_s": elapsed,
                **doc,
            }
            self.counters["progress_frames"] += 1
            asyncio.ensure_future(waiter.conn.send(frame))

    async def _monitor(self) -> None:
        """Periodic liveness duty: idle-window throttle ticks, ``progress``
        keepalive frames for quiet computations, and the wedged-request
        kill — no computation progress inside ``progress_timeout_s`` sets
        the work's stall event, which the supervisor turns into a
        kill-and-retry (``timed-out`` attempt, normal retry budget)."""
        interval = 0.25
        while True:
            await asyncio.sleep(interval)
            self.throttle.tick()
            now = time.monotonic()
            for work in list(self.inflight.values()):
                if not work.running or work.done:
                    continue
                keepalive = self.config.progress_interval_s
                if (
                    keepalive
                    and work.waiters
                    and now - max(work.last_progress_sent, work.started_t or 0.0)
                    >= keepalive
                ):
                    self._fan_out_progress(work, {"kind": "alive"})
                window = self.config.progress_timeout_s
                if window and now - work.last_progress > window:
                    work.last_progress = now  # one kill per silent window
                    work.stall_kills += 1
                    self.counters["wedged_kills"] += 1
                    _telemetry.counter("serve.wedged_kills")
                    _log.info(
                        f"liveness: no progress on {work.key[:16]} for "
                        f"{window:.1f}s — killing the attempt for retry"
                    )
                    work.stall.set()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        document = {
            "protocol": PROTOCOL,
            "pid": os.getpid(),
            "role": self.role,
            "server_id": self.server_id,
            "draining": self.draining,
            "counters": dict(self.counters),
            "queue_depth": len(self.queue),
            "active": self.active,
            "throttle": self.throttle.snapshot(),
            "recovery": self.recovery_report,
        }
        if self.cache is not None:
            document["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "demotions": self.cache.demotions,
                "stores": self.cache.stores,
                "entries": len(self.cache.store_backend),
            }
        if self.journal is not None:
            document["journal"] = {
                "path": self.journal.path,
                "appends": self.journal.appends,
                "torn_injected": self.journal.torn_injected,
            }
        return document

    def status_doc(self) -> dict:
        """The ``status`` op's richer document: stats + replication + telemetry.

        Lifetime accept/answer/cancel counters come straight from
        ``counters``; the telemetry counter snapshot (when a recorder is
        recording) adds the cross-subsystem view the PR-8 spans feed.
        """
        document = self.stats()
        document["uptime_s"] = round(time.monotonic() - self._started_at, 3)
        document["replication"] = self.replication.status()
        if self.replica is not None:
            document["standby"] = self.replica.status()
        recorder = _telemetry.get_recorder()
        if recorder is not None:
            snapshot = recorder.snapshot()
            document["telemetry"] = {
                "counters": snapshot.get("counters", {}),
                "gauges": snapshot.get("gauges", {}),
            }
        return document


# ---------------------------------------------------------------------------
# request helpers
# ---------------------------------------------------------------------------


def _task_from_request(request: dict) -> VerificationTask:
    design = request.get("design")
    if isinstance(design, str) and design:
        return VerificationTask.benchmark(design)
    verilog = request.get("verilog")
    if isinstance(verilog, str) and verilog:
        return VerificationTask.verilog(verilog, request.get("top"))
    aiger = request.get("aiger")
    if isinstance(aiger, str) and aiger:
        return VerificationTask.aiger(aiger)
    raise ValueError("request names no design/verilog/aiger")


def _resolve_property(system, property_name) -> str:
    if isinstance(property_name, str) and property_name:
        system.property_by_name(property_name)  # raises on unknown
        return property_name
    properties = list(system.properties)
    if not properties:
        raise ValueError(f"design {system.name!r} declares no properties")
    return properties[0].name


def _journal_doc(request: dict) -> dict:
    """The replayable subset of a request (drop op/id, keep query fields)."""
    return {
        name: request[name]
        for name in (
            "design", "verilog", "aiger", "top", "property",
            "representation", "bound", "deadline_s", "priority",
        )
        if name in request
    }


def _pool_deadline(work: _Work) -> Optional[float]:
    """The computation's wall budget: the furthest live waiter's remaining time."""
    remainings = [w.remaining() for w in work.waiters]
    if not remainings or any(r is None for r in remainings):
        return None
    return max(remainings)
