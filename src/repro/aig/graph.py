"""And-inverter graph with latches (sequential AIG).

Literal convention follows the AIGER format: a node with index ``i`` has the
positive literal ``2*i`` and the negated literal ``2*i + 1``; literal 0 is
constant false and literal 1 constant true.  Node index 0 is reserved for the
constant; inputs, latches and AND gates receive increasing indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

AigerLiteral = int


def aig_negate(lit: AigerLiteral) -> AigerLiteral:
    """Negate an AIG literal."""
    return lit ^ 1


def aig_is_negated(lit: AigerLiteral) -> bool:
    """Return True if the literal is the negated phase of its node."""
    return bool(lit & 1)


def aig_node(lit: AigerLiteral) -> int:
    """Return the node index of a literal."""
    return lit >> 1


@dataclass
class Latch:
    """A sequential element: current-state literal, next-state literal, reset value."""

    literal: AigerLiteral
    next_literal: AigerLiteral = 0
    reset: int = 0
    name: str = ""


class AIG:
    """A mutable and-inverter graph with primary inputs, latches and outputs."""

    FALSE: AigerLiteral = 0
    TRUE: AigerLiteral = 1

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        self._next_index = 1  # index 0 is the constant node
        self.inputs: List[AigerLiteral] = []
        self.input_names: Dict[AigerLiteral, str] = {}
        self.latches: List[Latch] = []
        self.outputs: List[Tuple[str, AigerLiteral]] = []
        #: bad-state outputs (property violations), as in AIGER 1.9
        self.bad: List[Tuple[str, AigerLiteral]] = []
        # and gates: output literal -> (left literal, right literal)
        self.ands: Dict[AigerLiteral, Tuple[AigerLiteral, AigerLiteral]] = {}
        # structural hashing: (left, right) -> output literal
        self._strash: Dict[Tuple[AigerLiteral, AigerLiteral], AigerLiteral] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_node(self) -> AigerLiteral:
        literal = 2 * self._next_index
        self._next_index += 1
        return literal

    def add_input(self, name: str = "") -> AigerLiteral:
        """Add a primary input and return its positive literal."""
        literal = self._new_node()
        self.inputs.append(literal)
        if name:
            self.input_names[literal] = name
        return literal

    def add_latch(self, name: str = "", reset: int = 0) -> Latch:
        """Add a latch (its next-state literal is set later with :meth:`set_latch_next`)."""
        literal = self._new_node()
        latch = Latch(literal=literal, reset=reset, name=name)
        self.latches.append(latch)
        return latch

    def set_latch_next(self, latch: Latch, next_literal: AigerLiteral) -> None:
        """Define the next-state function of a latch."""
        latch.next_literal = next_literal

    def add_and(self, left: AigerLiteral, right: AigerLiteral) -> AigerLiteral:
        """Add (or reuse) an AND gate and return its output literal.

        Performs constant propagation and structural hashing, the standard
        lightweight simplifications of AIG packages.
        """
        if left > right:
            left, right = right, left
        # constant and trivial cases
        if left == self.FALSE or right == self.FALSE:
            return self.FALSE
        if left == self.TRUE:
            return right
        if right == self.TRUE:
            return left
        if left == right:
            return left
        if left == aig_negate(right):
            return self.FALSE
        cached = self._strash.get((left, right))
        if cached is not None:
            return cached
        output = self._new_node()
        self.ands[output] = (left, right)
        self._strash[(left, right)] = output
        return output

    # -- derived gates -----------------------------------------------------
    def add_or(self, left: AigerLiteral, right: AigerLiteral) -> AigerLiteral:
        return aig_negate(self.add_and(aig_negate(left), aig_negate(right)))

    def add_xor(self, left: AigerLiteral, right: AigerLiteral) -> AigerLiteral:
        return self.add_or(
            self.add_and(left, aig_negate(right)),
            self.add_and(aig_negate(left), right),
        )

    def add_xnor(self, left: AigerLiteral, right: AigerLiteral) -> AigerLiteral:
        return aig_negate(self.add_xor(left, right))

    def add_mux(self, sel: AigerLiteral, then_lit: AigerLiteral, else_lit: AigerLiteral) -> AigerLiteral:
        """Return ``sel ? then_lit : else_lit``."""
        return self.add_or(self.add_and(sel, then_lit), self.add_and(aig_negate(sel), else_lit))

    def add_and_list(self, literals: Iterable[AigerLiteral]) -> AigerLiteral:
        result = self.TRUE
        for literal in literals:
            result = self.add_and(result, literal)
        return result

    def add_or_list(self, literals: Iterable[AigerLiteral]) -> AigerLiteral:
        result = self.FALSE
        for literal in literals:
            result = self.add_or(result, literal)
        return result

    def add_output(self, name: str, literal: AigerLiteral) -> None:
        """Add a primary output."""
        self.outputs.append((name, literal))

    def add_bad(self, name: str, literal: AigerLiteral) -> None:
        """Add a bad-state (property violation) output."""
        self.bad.append((name, literal))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_ands(self) -> int:
        return len(self.ands)

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_latches(self) -> int:
        return len(self.latches)

    @property
    def max_variable(self) -> int:
        return self._next_index - 1

    def stats(self) -> Dict[str, int]:
        """Return AIG size statistics."""
        return {
            "inputs": self.num_inputs,
            "latches": self.num_latches,
            "ands": self.num_ands,
            "outputs": len(self.outputs),
            "bad": len(self.bad),
        }

    # ------------------------------------------------------------------
    # evaluation (reference semantics, used in tests)
    # ------------------------------------------------------------------
    def evaluate(
        self,
        input_values: Dict[AigerLiteral, bool],
        latch_values: Dict[AigerLiteral, bool],
    ) -> Dict[AigerLiteral, bool]:
        """Evaluate every node given input and latch values; returns node literal -> value."""
        values: Dict[AigerLiteral, bool] = {self.FALSE: False}
        for literal in self.inputs:
            values[literal] = bool(input_values.get(literal, False))
        for latch in self.latches:
            values[latch.literal] = bool(latch_values.get(latch.literal, False))
        # AND nodes were created in topological order (children exist before parents)
        for output, (left, right) in self.ands.items():
            values[output] = self._value_of(left, values) and self._value_of(right, values)
        return values

    def _value_of(self, literal: AigerLiteral, values: Dict[AigerLiteral, bool]) -> bool:
        base = values[literal & ~1]
        return not base if aig_is_negated(literal) else base

    def literal_value(self, literal: AigerLiteral, values: Dict[AigerLiteral, bool]) -> bool:
        """Look up a literal's value in an evaluation result."""
        if literal == self.FALSE:
            return False
        if literal == self.TRUE:
            return True
        return self._value_of(literal, values)

    def simulate(self, input_sequence: List[Dict[AigerLiteral, bool]]) -> List[Dict[str, bool]]:
        """Simulate the sequential AIG from the reset state; returns bad-output values per cycle."""
        latch_values = {latch.literal: bool(latch.reset) for latch in self.latches}
        results: List[Dict[str, bool]] = []
        for inputs in input_sequence:
            values = self.evaluate(inputs, latch_values)
            # bad entries last: a bad output and a plain output may share a
            # property's name, and the documented value is the *bad* one
            results.append(
                {name: self.literal_value(lit, values) for name, lit in self.outputs + self.bad}
            )
            latch_values = {
                latch.literal: self.literal_value(latch.next_literal, values)
                for latch in self.latches
            }
        return results
