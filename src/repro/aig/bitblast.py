"""Bit-blasting of a word-level transition system into a sequential AIG.

Every register bit becomes a latch, every input bit a primary input, and the
word-level next-state/property expressions are lowered to AND/inverter gates.
The result is the bit-level netlist on which the ABC-style engines operate and
which the BLIF/AIGER writers serialize (standing in for the Yosys → BLIF →
ABC flow of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.exprs.nodes import Const, Expr, Op, Var
from repro.aig.graph import AIG, AigerLiteral, aig_negate
from repro.netlist import TransitionSystem


class AigBitBlastError(Exception):
    """Raised when an expression cannot be lowered to the AIG."""


class _AigBlaster:
    """Lowers word-level expressions to per-bit AIG literals."""

    def __init__(self, aig: AIG, signal_bits: Dict[str, List[AigerLiteral]]) -> None:
        self.aig = aig
        self.signal_bits = signal_bits
        self._cache: Dict[Expr, Tuple[AigerLiteral, ...]] = {}

    # -- helpers -----------------------------------------------------------
    def const_bits(self, value: int, width: int) -> List[AigerLiteral]:
        return [self.aig.TRUE if (value >> i) & 1 else self.aig.FALSE for i in range(width)]

    def blast(self, expr: Expr) -> List[AigerLiteral]:
        cached = self._cache.get(expr)
        if cached is not None:
            return list(cached)
        result = self._blast(expr)
        if len(result) != expr.width:
            raise AigBitBlastError(f"width mismatch lowering {expr!r}")
        self._cache[expr] = tuple(result)
        return list(result)

    def blast_bool(self, expr: Expr) -> AigerLiteral:
        bits = self.blast(expr)
        return bits[0] if len(bits) == 1 else self.aig.add_or_list(bits)

    # -- node dispatch --------------------------------------------------------
    def _blast(self, expr: Expr) -> List[AigerLiteral]:
        aig = self.aig
        if isinstance(expr, Const):
            return self.const_bits(expr.value, expr.width)
        if isinstance(expr, Var):
            bits = self.signal_bits.get(expr.name)
            if bits is None:
                raise AigBitBlastError(f"unknown signal {expr.name!r} during bit-blasting")
            if len(bits) != expr.width:
                raise AigBitBlastError(f"width mismatch for signal {expr.name!r}")
            return list(bits)
        assert isinstance(expr, Op)
        op = expr.op
        args = expr.args

        if op == "not":
            return [aig_negate(bit) for bit in self.blast(args[0])]
        if op in ("and", "or", "xor", "xnor", "nand", "nor"):
            a = self.blast(args[0])
            b = self.blast(args[1])
            gate = {
                "and": aig.add_and,
                "or": aig.add_or,
                "xor": aig.add_xor,
                "xnor": aig.add_xnor,
                "nand": lambda x, y: aig_negate(aig.add_and(x, y)),
                "nor": lambda x, y: aig_negate(aig.add_or(x, y)),
            }[op]
            return [gate(x, y) for x, y in zip(a, b)]
        if op == "neg":
            a = self.blast(args[0])
            return self._adder(self.const_bits(0, len(a)), [aig_negate(x) for x in a], aig.TRUE)
        if op == "add":
            return self._adder(self.blast(args[0]), self.blast(args[1]), aig.FALSE)
        if op == "sub":
            b = self.blast(args[1])
            return self._adder(self.blast(args[0]), [aig_negate(x) for x in b], aig.TRUE)
        if op == "mul":
            return self._multiplier(self.blast(args[0]), self.blast(args[1]))
        if op in ("udiv", "urem"):
            quotient, remainder = self._divider(self.blast(args[0]), self.blast(args[1]))
            return quotient if op == "udiv" else remainder
        if op in ("shl", "lshr", "ashr"):
            return self._shifter(expr)
        if op in ("eq", "ne"):
            a = self.blast(args[0])
            b = self.blast(args[1])
            equal = self.aig.add_and_list([aig.add_xnor(x, y) for x, y in zip(a, b)])
            return [equal if op == "eq" else aig_negate(equal)]
        if op in ("ult", "ule", "ugt", "uge"):
            a = self.blast(args[0])
            b = self.blast(args[1])
            geq = self._unsigned_geq(a, b)
            leq = self._unsigned_geq(b, a)
            return {
                "uge": [geq],
                "ult": [aig_negate(geq)],
                "ule": [leq],
                "ugt": [aig_negate(leq)],
            }[op]
        if op in ("slt", "sle", "sgt", "sge"):
            a = self.blast(args[0])
            b = self.blast(args[1])
            a = a[:-1] + [aig_negate(a[-1])]
            b = b[:-1] + [aig_negate(b[-1])]
            geq = self._unsigned_geq(a, b)
            leq = self._unsigned_geq(b, a)
            return {
                "sge": [geq],
                "slt": [aig_negate(geq)],
                "sle": [leq],
                "sgt": [aig_negate(leq)],
            }[op]
        if op == "redand":
            return [self.aig.add_and_list(self.blast(args[0]))]
        if op == "redor":
            return [self.aig.add_or_list(self.blast(args[0]))]
        if op == "redxor":
            bits = self.blast(args[0])
            result = bits[0]
            for bit in bits[1:]:
                result = aig.add_xor(result, bit)
            return [result]
        if op == "concat":
            result: List[AigerLiteral] = []
            for arg in reversed(args):
                result.extend(self.blast(arg))
            return result
        if op == "extract":
            hi, lo = expr.params
            return self.blast(args[0])[lo : hi + 1]
        if op == "zext":
            (extra,) = expr.params
            return self.blast(args[0]) + [aig.FALSE] * extra
        if op == "sext":
            (extra,) = expr.params
            bits = self.blast(args[0])
            return bits + [bits[-1]] * extra
        if op == "ite":
            cond = self.blast_bool(args[0])
            then_bits = self.blast(args[1])
            else_bits = self.blast(args[2])
            return [aig.add_mux(cond, t, e) for t, e in zip(then_bits, else_bits)]
        raise AigBitBlastError(f"unsupported operator {op!r}")

    # -- arithmetic helpers ------------------------------------------------
    def _adder(
        self, a: List[AigerLiteral], b: List[AigerLiteral], carry: AigerLiteral
    ) -> List[AigerLiteral]:
        aig = self.aig
        out: List[AigerLiteral] = []
        for x, y in zip(a, b):
            xor_xy = aig.add_xor(x, y)
            out.append(aig.add_xor(xor_xy, carry))
            carry = aig.add_or(aig.add_and(x, y), aig.add_and(xor_xy, carry))
        return out

    def _multiplier(self, a: List[AigerLiteral], b: List[AigerLiteral]) -> List[AigerLiteral]:
        aig = self.aig
        width = len(a)
        accum = self.const_bits(0, width)
        for shift, b_bit in enumerate(b):
            partial = [
                aig.add_and(a[i - shift], b_bit) if i >= shift else aig.FALSE
                for i in range(width)
            ]
            accum = self._adder(accum, partial, aig.FALSE)
        return accum

    def _divider(
        self, numerator: List[AigerLiteral], denominator: List[AigerLiteral]
    ) -> Tuple[List[AigerLiteral], List[AigerLiteral]]:
        aig = self.aig
        width = len(numerator)
        remainder = self.const_bits(0, width)
        quotient = [aig.FALSE] * width
        for i in reversed(range(width)):
            remainder = [numerator[i]] + remainder[:-1]
            geq = self._unsigned_geq(remainder, denominator)
            difference = self._adder(remainder, [aig_negate(x) for x in denominator], aig.TRUE)
            remainder = [aig.add_mux(geq, d, r) for d, r in zip(difference, remainder)]
            quotient[i] = geq
        den_zero = aig_negate(aig.add_or_list(denominator))
        ones = self.const_bits((1 << width) - 1, width)
        quotient = [aig.add_mux(den_zero, o, q) for o, q in zip(ones, quotient)]
        remainder = [aig.add_mux(den_zero, n, r) for n, r in zip(numerator, remainder)]
        return quotient, remainder

    def _unsigned_geq(self, a: List[AigerLiteral], b: List[AigerLiteral]) -> AigerLiteral:
        aig = self.aig
        carry = aig.TRUE
        for x, y in zip(a, b):
            xor_term = aig.add_xor(x, aig_negate(y))
            carry = aig.add_or(
                aig.add_and(x, aig_negate(y)), aig.add_and(xor_term, carry)
            )
        return carry

    def _shifter(self, expr: Op) -> List[AigerLiteral]:
        aig = self.aig
        value = self.blast(expr.args[0])
        amount = self.blast(expr.args[1])
        width = len(value)
        left = expr.op == "shl"
        arithmetic = expr.op == "ashr"
        fill = value[-1] if arithmetic else aig.FALSE
        stages = max(1, (width - 1).bit_length())
        current = list(value)
        for stage in range(min(stages, len(amount))):
            shift_by = 1 << stage
            sel = amount[stage]
            shifted = []
            for i in range(width):
                if left:
                    src = i - shift_by
                    bit = current[src] if src >= 0 else aig.FALSE
                else:
                    src = i + shift_by
                    bit = current[src] if src < width else fill
                shifted.append(aig.add_mux(sel, bit, current[i]))
            current = shifted
        high_bits = amount[stages:]
        if high_bits:
            overflow = aig.add_or_list(high_bits)
            saturate = aig.FALSE if (left or not arithmetic) else fill
            current = [aig.add_mux(overflow, saturate, bit) for bit in current]
        return current


def aig_from_transition_system(system: TransitionSystem) -> AIG:
    """Bit-blast a transition system into a sequential AIG.

    Properties become *bad* outputs (the negation of each property), matching
    the HWMCC convention that a bad output asserted in some reachable state
    means the property fails.
    """
    flat = system.flattened()
    aig = AIG(name=flat.name)
    signal_bits: Dict[str, List[AigerLiteral]] = {}

    for name, width in flat.inputs.items():
        signal_bits[name] = [aig.add_input(f"{name}[{i}]") for i in range(width)]

    latch_map: Dict[str, List] = {}
    from repro.exprs import evaluate

    for name, width in flat.state_vars.items():
        init_value = evaluate(flat.init[name], {})
        latches = [
            aig.add_latch(f"{name}[{i}]", reset=(init_value >> i) & 1) for i in range(width)
        ]
        latch_map[name] = latches
        signal_bits[name] = [latch.literal for latch in latches]

    blaster = _AigBlaster(aig, signal_bits)

    for name, width in flat.state_vars.items():
        next_bits = blaster.blast(flat.next[name])
        for latch, bit in zip(latch_map[name], next_bits):
            aig.set_latch_next(latch, bit)

    constraint_lit = aig.TRUE
    for constraint in flat.constraints:
        constraint_lit = aig.add_and(constraint_lit, blaster.blast_bool(constraint))

    for prop in flat.properties:
        good = blaster.blast_bool(prop.expr)
        bad = aig.add_and(constraint_lit, aig_negate(good))
        aig.add_bad(prop.name, bad)
        aig.add_output(prop.name, good)

    return aig


def transition_system_from_aig(
    aig: AIG, name: Optional[str] = None
) -> TransitionSystem:
    """Lift a sequential AIG back into a (1-bit-word) transition system.

    Every latch becomes a 1-bit state variable and every primary input a
    1-bit input; AND gates become shared word-level expressions over them.
    Bad outputs (AIGER 1.9) become safety properties asserting the bad
    literal is never 1; ordinary outputs are used as bad states when no bad
    section is present (the pre-1.9 HWMCC convention).  This is the loader
    behind verifying ``.aag`` files with the word-level engines through the
    ``repro-verify`` CLI.
    """
    from repro.exprs import bv_and, bv_const, bv_eq, bv_not

    system = TransitionSystem(name or aig.name or "aig")

    def signal_name(raw: str, fallback: str, used: set) -> str:
        candidate = raw or fallback
        if candidate in used:
            candidate = f"{fallback}_{candidate}"
        index = 2
        base = candidate
        while candidate in used:
            candidate = f"{base}_{index}"
            index += 1
        used.add(candidate)
        return candidate

    used: set = set()
    node_expr: Dict[AigerLiteral, Expr] = {}
    for literal in aig.inputs:
        input_name = signal_name(aig.input_names.get(literal, ""), f"i{literal >> 1}", used)
        node_expr[literal] = system.add_input(input_name, 1)
    latch_names: Dict[AigerLiteral, str] = {}
    for latch in aig.latches:
        latch_name = signal_name(latch.name, f"l{latch.literal >> 1}", used)
        latch_names[latch.literal] = latch_name
        node_expr[latch.literal] = system.add_state_var(
            latch_name, 1, init=latch.reset & 1
        )

    false_expr = bv_const(0, 1)

    def expr_of(literal: AigerLiteral) -> Expr:
        """Resolve a literal to an expression, building AND cones iteratively."""
        base = literal & ~1
        if base == 0:
            result = false_expr
        else:
            result = node_expr.get(base)
            if result is None:
                stack = [base]
                while stack:
                    node = stack[-1]
                    if node in node_expr:
                        stack.pop()
                        continue
                    left, right = aig.ands[node]
                    pending = [
                        child & ~1
                        for child in (left, right)
                        if (child & ~1) != 0 and (child & ~1) not in node_expr
                    ]
                    if pending:
                        stack.extend(pending)
                        continue
                    stack.pop()
                    node_expr[node] = bv_and(_phase(left), _phase(right))
                result = node_expr[base]
        return bv_not(result) if literal & 1 else result

    def _phase(literal: AigerLiteral) -> Expr:
        base = literal & ~1
        expr = false_expr if base == 0 else node_expr[base]
        return bv_not(expr) if literal & 1 else expr

    for latch in aig.latches:
        system.set_next(latch_names[latch.literal], expr_of(latch.next_literal))

    bad_states = list(aig.bad)
    if not bad_states:
        # pre-AIGER-1.9 convention: outputs are bad-state functions
        bad_states = [(name or f"o{index}", literal)
                      for index, (name, literal) in enumerate(aig.outputs)]
    for index, (bad_name, bad_literal) in enumerate(bad_states):
        system.add_property(
            bad_name or f"bad{index}", bv_eq(expr_of(bad_literal), false_expr)
        )
    return system
