"""Bit-level netlist representation (and-inverter graph).

The bit-level flow of the paper synthesizes Verilog with Yosys into BLIF and
hands the bit-level netlist to ABC.  This package provides the equivalent
substrate: the word-level transition system is bit-blasted into an
and-inverter graph with latches, which can be exported in AIGER (ASCII) and
BLIF formats and is the representation on which the "bit-level" engine
configurations (the ABC stand-ins) operate.
"""

from repro.aig.graph import AIG, AigerLiteral
from repro.aig.bitblast import aig_from_transition_system
from repro.aig.formats import write_aiger, write_blif, read_aiger

__all__ = [
    "AIG",
    "AigerLiteral",
    "aig_from_transition_system",
    "write_aiger",
    "write_blif",
    "read_aiger",
]
