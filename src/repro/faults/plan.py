"""The seeded fault plan: a pure function from (seed, kind, site) to faults.

A :class:`FaultPlan` carries no mutable state besides bookkeeping, pickles
cleanly (it crosses the fork boundary into worker processes), and draws every
injection decision from a SHA-256 hash of ``(seed, kind, key, attempt)`` —
the same plan replayed over the same work always injects the same faults,
which is what makes a chaos sweep debuggable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: raise an exception inside ``engine.verify`` (the ERROR outcome category)
CRASH = "crash"
#: sleep before the engine starts searching (stragglers / cancellation races)
SLOW_START = "slow-start"
#: SIGKILL the worker process mid-run (the ``crashed`` outcome category)
WORKER_KILL = "worker-kill"
#: wedge the SAT search; the armed cooperative deadline must interrupt it
HANG = "hang"
#: wedge the SAT search unconditionally; supervision must kill the process
HANG_HARD = "hang-hard"
#: make process spawning fail (exercises pool-health degradation)
SPAWN_FAIL = "spawn-fail"
#: garble a just-written cache entry (decodable but unable to justify itself)
CACHE_CORRUPT = "cache-corrupt"
#: truncate a just-written cache entry (undecodable: the quarantine path)
CACHE_TRUNCATE = "cache-truncate"
#: flip the engine's verdict and attach a forged certificate (the liar)
CERT_FORGE = "cert-forge"
#: corrupt a compiled kernel's replay output (the scalar cross-check must
#: catch it and demote the query to the pure-Python tier, never change it)
KERNEL_MISCOMPILE = "kernel-miscompile"
#: serve: the client hangs up mid-request (the server must cancel cleanly)
CLIENT_DISCONNECT = "client-disconnect"
#: serve: a burst of extra requests beyond the admission cap (the server
#: must answer with explicit ``overloaded`` rejections, never queue unbounded)
QUEUE_FLOOD = "queue-flood"
#: serve: tear the tail off a just-appended journal record (simulates a
#: crash mid-append; recovery must skip the torn line, never refuse to start)
JOURNAL_TORN = "journal-torn"
#: fleet: sever a primary->standby replication stream mid-flight (the
#: standby must resubscribe and resync from a fresh snapshot, never wedge)
REPL_LINK_DROP = "repl-link-drop"
#: fleet: a standby acks a replicated record without persisting it, then
#: takes over with a stale journal tail (the router's resubmit path must
#: still get every client answered)
STALE_STANDBY = "stale-standby"
#: fleet: the router loses a member's connection and cannot reconnect for a
#: window (a network partition; routing must fail over and then heal)
ROUTER_PARTITION = "router-partition"
#: fleet: a member silently drops heartbeat requests (the router must mark
#: it down on misses and recover it when heartbeats resume)
HEARTBEAT_BLACKOUT = "heartbeat-blackout"

FAULT_KINDS = (
    CRASH,
    SLOW_START,
    WORKER_KILL,
    HANG,
    HANG_HARD,
    SPAWN_FAIL,
    CACHE_CORRUPT,
    CACHE_TRUNCATE,
    CERT_FORGE,
    KERNEL_MISCOMPILE,
    CLIENT_DISCONNECT,
    QUEUE_FLOOD,
    JOURNAL_TORN,
    REPL_LINK_DROP,
    STALE_STANDBY,
    ROUTER_PARTITION,
    HEARTBEAT_BLACKOUT,
)


class InjectedFault(RuntimeError):
    """An exception crash deliberately raised by the fault plan."""


@dataclass
class FaultPlan:
    """Deterministic, seeded decisions about which faults fire where.

    Parameters
    ----------
    seed:
        Root of every draw; two sweeps with the same seed over the same work
        inject identically.
    rates:
        Per-kind firing probability in ``[0, 1]`` (missing kinds never fire).
    slow_start_s:
        Sleep duration of a ``slow-start`` fault.
    first_attempt_only:
        When True (the default for chaos sweeps that must still converge),
        faults fire only on a unit's first attempt — supervised retries of a
        killed or wedged attempt then run clean, so every query still ends
        with a definitive, validated verdict.
    protected_pid:
        PID that destructive faults (``worker-kill``, unbounded wedges) skip;
        :func:`repro.faults.injection.install` records the installing process
        here so in-process (degraded) execution can never kill or wedge the
        driver itself.
    """

    seed: int = 0
    rates: Dict[str, float] = field(default_factory=dict)
    slow_start_s: float = 0.2
    first_attempt_only: bool = True
    protected_pid: Optional[int] = None
    #: faults this plan instance has fired, for reporting ("kind@key" tags);
    #: per-process — a worker's log dies with the worker, the observable
    #: effect must come back through the outcome taxonomy instead
    fired: List[str] = field(default_factory=list)

    def rate(self, kind: str) -> float:
        return float(self.rates.get(kind, 0.0))

    def decide(self, kind: str, key: str, attempt: int = 0) -> bool:
        """Deterministically decide whether ``kind`` fires at site ``key``."""
        rate = self.rate(kind)
        if rate <= 0.0:
            return False
        if self.first_attempt_only and attempt > 0:
            return False
        if rate < 1.0:
            digest = hashlib.sha256(
                f"{self.seed}|{kind}|{key}|{attempt}".encode("utf-8")
            ).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            if draw >= rate:
                return False
        self.fired.append(f"{kind}@{key}#{attempt}")
        return True
