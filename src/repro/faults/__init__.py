"""Deterministic fault injection: the chaos harness of the execution layer.

The paper's portfolio thesis only holds up operationally if a wedged, killed
or lying engine can never wedge or corrupt a whole query.  This package makes
those failures *reproducible*: a seeded :class:`FaultPlan` decides — purely
from ``(seed, fault kind, site key)`` — where to inject worker kills, engine
hangs, slow starts, exception crashes, spawn failures, cache-entry corruption
and forged certificates.  The plan is installed process-wide
(:func:`install`) and consulted from thin injection points threaded through
:mod:`repro.engines.base` (engine start/finish), the
:class:`repro.engines.supervision.WorkerSupervisor` (spawns) and
:class:`repro.cache.store.CertificateStore` (entry writes).  With no plan
installed every injection point is a no-op.

Every injected fault must surface in the normal outcome taxonomy — a crashed
worker as ``crashed``, a wedge as ``timed-out`` or a cooperative
``TIMEOUT``, a forged certificate as a rejected/adjudicated claim — never as
a silent skip; ``repro-bench --faults`` sweeps seeded plans and gates on
exactly that.
"""

from repro.faults.plan import (
    CACHE_CORRUPT,
    CACHE_TRUNCATE,
    CERT_FORGE,
    CRASH,
    FAULT_KINDS,
    HANG,
    HANG_HARD,
    SLOW_START,
    SPAWN_FAIL,
    WORKER_KILL,
    FaultPlan,
    InjectedFault,
)
from repro.faults.injection import (
    clear,
    current,
    fail_spawn,
    install,
    maybe_forge,
    on_engine_finish,
    on_engine_start,
    plan_installed,
    set_attempt,
    tamper_saved_entry,
)

__all__ = [
    "CACHE_CORRUPT",
    "CACHE_TRUNCATE",
    "CERT_FORGE",
    "CRASH",
    "FAULT_KINDS",
    "HANG",
    "HANG_HARD",
    "SLOW_START",
    "SPAWN_FAIL",
    "WORKER_KILL",
    "FaultPlan",
    "InjectedFault",
    "clear",
    "current",
    "fail_spawn",
    "install",
    "maybe_forge",
    "on_engine_finish",
    "on_engine_start",
    "plan_installed",
    "set_attempt",
    "tamper_saved_entry",
]
