"""Process-wide fault-plan installation and the injection points themselves.

The active plan is a module global: :func:`install` arms it in the driver
process and the default ``fork`` start method carries it into every worker,
so one installation chaos-tests the whole execution tree.  Workers that are
*retries* of a supervised unit report their attempt number via
:func:`set_attempt`, which is how ``first_attempt_only`` plans let retried
attempts run clean.

Each injection point is a cheap no-op (one global read) without a plan, so
the production hot path pays nothing for the harness.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time
from typing import Optional

from repro.faults.plan import (
    CACHE_CORRUPT,
    CACHE_TRUNCATE,
    CERT_FORGE,
    CLIENT_DISCONNECT,
    CRASH,
    HANG,
    HANG_HARD,
    HEARTBEAT_BLACKOUT,
    JOURNAL_TORN,
    KERNEL_MISCOMPILE,
    QUEUE_FLOOD,
    REPL_LINK_DROP,
    ROUTER_PARTITION,
    SLOW_START,
    SPAWN_FAIL,
    STALE_STANDBY,
    WORKER_KILL,
    FaultPlan,
    InjectedFault,
)
from repro.sat.solver import Solver

_PLAN: Optional[FaultPlan] = None
_ATTEMPT: int = 0


# ---------------------------------------------------------------------------
# plan lifecycle
# ---------------------------------------------------------------------------


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide (inherited by forked workers)."""
    global _PLAN, _ATTEMPT
    if plan.protected_pid is None:
        plan.protected_pid = os.getpid()
    _PLAN = plan
    _ATTEMPT = 0
    return plan


def clear() -> None:
    """Remove the active plan and any solver wedge it installed."""
    global _PLAN, _ATTEMPT
    _PLAN = None
    _ATTEMPT = 0
    Solver.fault_hook = None


def current() -> Optional[FaultPlan]:
    return _PLAN


@contextlib.contextmanager
def plan_installed(plan: FaultPlan):
    """Context manager: install ``plan`` for the duration of a block."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def set_attempt(attempt: int) -> None:
    """Record the supervised attempt number of this process's current unit."""
    global _ATTEMPT
    _ATTEMPT = attempt


# ---------------------------------------------------------------------------
# injection points
# ---------------------------------------------------------------------------


def _engine_key(engine, property_name: Optional[str]) -> str:
    design = getattr(getattr(engine, "system", None), "name", "?")
    return f"{design}:{engine.name}:{property_name or ''}"


def on_engine_start(engine, property_name: Optional[str]) -> None:
    """Fire start-of-verify faults: slow-start, crash, kill, wedge.

    Called by the :class:`repro.engines.base.Engine` verify wrapper.  A
    ``hang``/``hang-hard`` draw installs the solver wedge hook; the caller
    must pair this with :func:`on_engine_finish`.
    """
    plan = _PLAN
    if plan is None:
        return
    key = _engine_key(engine, property_name)
    if plan.decide(SLOW_START, key, _ATTEMPT):
        time.sleep(plan.slow_start_s)
    if plan.decide(CRASH, key, _ATTEMPT):
        raise InjectedFault(f"injected crash in {key}")
    if plan.decide(WORKER_KILL, key, _ATTEMPT) and os.getpid() != plan.protected_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    hard = plan.decide(HANG_HARD, key, _ATTEMPT)
    if hard or plan.decide(HANG, key, _ATTEMPT):
        # never wedge the protected (driver) process unconditionally: in
        # degraded in-process execution the cooperative deadline must win
        _install_wedge(hard and os.getpid() != plan.protected_pid)


def on_engine_finish() -> None:
    """Remove a solver wedge installed for the finished verify call."""
    if _PLAN is not None:
        Solver.fault_hook = None


def _install_wedge(hard: bool) -> None:
    """Arm the solver fault hook: the next search checkpoint stops progressing.

    The cooperative (``hang``) wedge spins until the solver's armed deadline
    passes and then returns — the very next deadline check raises
    :class:`repro.sat.solver.SolverInterrupted`, which is the acceptance
    path "a hang inside a SAT solve is interrupted without killing the
    process".  With no armed deadline, or in ``hard`` mode, the wedge never
    returns and the supervisor's terminate→SIGKILL escalation must reap the
    worker.
    """
    state = {"fired": False}

    def wedge(solver: Solver) -> None:
        if state["fired"]:
            return
        state["fired"] = True
        while True:
            deadline = solver._deadline
            if not hard and deadline is not None and time.monotonic() >= deadline:
                return
            time.sleep(0.01)

    Solver.fault_hook = wedge


def maybe_forge(engine, property_name: Optional[str], result):
    """Replace ``result`` with a lying verdict backed by a forged certificate.

    Mirrors :class:`repro.engines.oracle.OracleEngine`: a definitive verdict
    is flipped, an inconclusive one is upgraded to a confident SAFE — in both
    cases backed by a certificate (trivial TRUE invariant, all-zero trace)
    that independent validation must reject.  Returns ``None`` when no forge
    fault fires.
    """
    plan = _PLAN
    if plan is None or result is None:
        return None
    key = _engine_key(engine, property_name)
    if not plan.decide(CERT_FORGE, key, _ATTEMPT):
        return None

    from repro.certs import InductiveCertificate, Witness
    from repro.engines.result import Counterexample, Status, VerificationResult
    from repro.exprs import TRUE

    resolved = result.property_name or engine.default_property(property_name)
    claim = Status.SAFE if result.status != Status.SAFE else Status.UNSAFE
    if claim == Status.SAFE:
        certificate = InductiveCertificate(resolved, engine.name, TRUE)
        counterexample = None
    else:
        inputs = ({name: 0 for name in engine.system.inputs},)
        certificate = Witness(resolved, engine.name, inputs)
        counterexample = Counterexample(resolved, [dict(step) for step in inputs])
    return VerificationResult(
        claim,
        engine.name,
        resolved,
        runtime=result.runtime,
        counterexample=counterexample,
        reason=f"forged certificate injected by fault plan (was {result.status!r})",
        certificate=certificate,
    )


def fail_spawn(key: str) -> bool:
    """Whether a supervised process spawn should fail at site ``key``."""
    plan = _PLAN
    return plan is not None and plan.decide(SPAWN_FAIL, key, _ATTEMPT)


def forge_kernel_output(key: str) -> bool:
    """Whether a compiled kernel's replay output should be corrupted at ``key``.

    Consulted by :meth:`repro.kernels.ckernel.CompiledKernel.replay_checked`
    *before* its scalar cross-check runs, so a fired fault exercises the full
    detect-and-fall-back path rather than bypassing it.
    """
    plan = _PLAN
    return plan is not None and plan.decide(KERNEL_MISCOMPILE, key, _ATTEMPT)


def client_disconnect(key: str) -> bool:
    """Whether a soak client should hang up mid-request at site ``key``.

    Consulted by the serve-soak harness (the *client* side of the chaos):
    a fired fault sends the request and closes the connection without
    reading the reply, so the server must detect the disconnect and cancel
    or complete the computation without wedging or leaking.
    """
    plan = _PLAN
    return plan is not None and plan.decide(CLIENT_DISCONNECT, key, _ATTEMPT)


def queue_flood(key: str) -> bool:
    """Whether the soak harness should fire an extra flood burst at ``key``."""
    plan = _PLAN
    return plan is not None and plan.decide(QUEUE_FLOOD, key, _ATTEMPT)


def drop_replication_link(key: str) -> bool:
    """Whether the primary should sever one standby's replication stream.

    Consulted by :class:`repro.serve.replica.ReplicationManager` before
    sending a ``repl-append``: a fired fault closes the subscriber's
    connection instead, so the standby must detect the loss, resubscribe,
    and resync from a fresh snapshot without ever wedging the primary.
    """
    plan = _PLAN
    return plan is not None and plan.decide(REPL_LINK_DROP, key, _ATTEMPT)


def stale_standby(key: str) -> bool:
    """Whether a standby should ack a replicated record without persisting it.

    Consulted by :class:`repro.serve.replica.StandbyReplica` per applied
    record: a fired fault leaves the standby's journal missing that record,
    so a later takeover happens with a stale tail — the router-level
    resubmission path (idempotent by request id) must still get every
    accepted client request answered.
    """
    plan = _PLAN
    return plan is not None and plan.decide(STALE_STANDBY, key, _ATTEMPT)


def router_partition(key: str) -> bool:
    """Whether the router should be partitioned from a member for a window.

    Consulted by the router's per-member connection loop: a fired fault
    drops the member connection and refuses to reconnect for a short window,
    after which routing must heal without losing any in-flight request.
    """
    plan = _PLAN
    return plan is not None and plan.decide(ROUTER_PARTITION, key, _ATTEMPT)


def heartbeat_blackout(key: str) -> bool:
    """Whether a member should silently drop one heartbeat request.

    Consulted by the server's ``heartbeat`` op handler: a fired fault sends
    no reply at all, so the router counts a miss; enough consecutive misses
    mark the member down and re-route around it, and the member must be
    restored once heartbeats flow again.
    """
    plan = _PLAN
    return plan is not None and plan.decide(HEARTBEAT_BLACKOUT, key, _ATTEMPT)


def torn_journal_append(path: str, key: str) -> bool:
    """Tear the tail off the journal record just appended to ``path``.

    Consulted by :meth:`repro.serve.journal.RequestJournal.append` after the
    line hits the file: a fired fault truncates the file mid-line, exactly
    what a crash between ``write`` and completing the record leaves behind.
    Recovery must tolerate the torn tail (skip it, count it) — the journaled
    request it belonged to then reads as never-accepted, which is safe: the
    client never got an accept reply either.
    """
    plan = _PLAN
    if plan is None or not plan.decide(JOURNAL_TORN, key, _ATTEMPT):
        return False
    try:
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(max(0, size - 7))
    except OSError:  # pragma: no cover - journal raced away
        return False
    return True


def tamper_saved_entry(path: str, key: str, payload: str) -> Optional[str]:
    """Corrupt or truncate a cache entry that was just written to ``path``.

    ``cache-truncate`` leaves an undecodable half-document (exercises the
    store's quarantine path); ``cache-corrupt`` rewrites the document with
    its verdict flipped, so it decodes but cannot justify itself and is
    demoted on lookup.  Returns the tamper applied, or ``None``.
    """
    plan = _PLAN
    if plan is None:
        return None
    if plan.decide(CACHE_TRUNCATE, key, _ATTEMPT):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload[: max(1, len(payload) // 2)])
        return CACHE_TRUNCATE
    if plan.decide(CACHE_CORRUPT, key, _ATTEMPT):
        import json

        try:
            document = json.loads(payload)
            from repro.engines.result import Status

            status = document.get("status")
            document["status"] = (
                Status.UNSAFE if status == Status.SAFE else Status.SAFE
            )
            tampered = json.dumps(document, indent=2) + "\n"
        except ValueError:  # pragma: no cover - payload is our own JSON
            tampered = payload[::-1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(tampered)
        return CACHE_CORRUPT
    return None
