"""Compiled C kernels: differential correctness, build cache, degradation.

The native tier must be bit-exact with the scalar reference wherever it is
allowed to answer, must disappear gracefully (never erroring a query) when no
compiler is available, and must be caught by the cross-checked-verdict gate
when it lies — including lies injected by the ``kernel-miscompile`` chaos
fault.
"""

import random

import pytest

import repro.kernels as kernels
from repro.benchmarks import benchmark_names, load_system
from repro.cache.key import kernel_key
from repro.faults.injection import plan_installed
from repro.faults.plan import KERNEL_MISCOMPILE, FaultPlan
from repro.kernels import _scalar_replay, checked_replay
from repro.kernels.build import build_kernel, compiler_available
from repro.kernels.ckernel import CompiledKernel, KernelMismatch
from repro.netlist.simulate import Simulator
from repro.v2c.codegen import KERNEL_ABI_VERSION

SUITE = benchmark_names()

needs_cc = pytest.mark.skipif(
    not compiler_available(), reason="no C compiler available"
)


def _workload(system, cycles=72, seed=13):
    rng = random.Random(seed)
    return [
        {name: rng.getrandbits(width) for name, width in system.inputs.items()}
        for _ in range(cycles)
    ]


@pytest.fixture()
def fresh_tier(monkeypatch, tmp_path):
    """An empty on-disk build cache and a cleared in-process kernel memo."""
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    monkeypatch.setattr(kernels, "_KERNEL_CACHE", {})
    return tmp_path


# ---------------------------------------------------------------------------
# differential correctness: compiled vs scalar, whole suite
# ---------------------------------------------------------------------------


@needs_cc
@pytest.mark.parametrize("design", SUITE)
def test_compiled_trace_matches_scalar(design):
    """Register trace and first constraint-alive violation agree per design."""
    system = load_system(design)
    sequence = _workload(system)
    kernel = kernels.get_kernel(system)
    run = kernel.replay(sequence, want_trace=True)
    scalar = Simulator(system)
    for cycle in range(run.cycles):
        assert run.states[cycle] == scalar.state, f"{design} cycle {cycle}"
        scalar.step(sequence[cycle])
    reference = _scalar_replay(system, sequence)
    assert run.first_violation == reference.first_violation
    assert run.violated_property == reference.violated_property


@needs_cc
@pytest.mark.parametrize("design", SUITE)
def test_checked_replay_serves_compiled_and_agrees(design):
    system = load_system(design)
    sequence = _workload(system, seed=29)
    outcome = checked_replay(system, sequence)
    reference = _scalar_replay(system, sequence)
    assert outcome.backend == "compiled"
    assert outcome.demotions == []
    assert (outcome.first_violation, outcome.violated_property) == (
        reference.first_violation,
        reference.violated_property,
    )


# ---------------------------------------------------------------------------
# the on-disk build cache
# ---------------------------------------------------------------------------


@needs_cc
def test_build_cache_compiles_once(fresh_tier):
    system = load_system("arbiter")
    first = build_kernel(system, cache_dir=fresh_tier)
    stamp = first.stat().st_mtime_ns
    again = build_kernel(system, cache_dir=fresh_tier)
    assert again == first
    assert again.stat().st_mtime_ns == stamp, "cache hit must not rebuild"
    # the generated C source is published next to the shared object
    assert first.with_suffix(".c").exists()


def test_kernel_key_tracks_semantics():
    daio, tlc = load_system("daio"), load_system("tlc")
    assert kernel_key(daio, KERNEL_ABI_VERSION) != kernel_key(tlc, KERNEL_ABI_VERSION)
    assert kernel_key(daio, KERNEL_ABI_VERSION) != kernel_key(
        daio, KERNEL_ABI_VERSION + 1
    ), "an ABI bump must invalidate every cached kernel"
    assert kernel_key(daio, KERNEL_ABI_VERSION) == kernel_key(
        load_system("daio"), KERNEL_ABI_VERSION
    ), "the key is a content hash: reloading the design must not change it"


# ---------------------------------------------------------------------------
# graceful degradation without a compiler
# ---------------------------------------------------------------------------


def test_disabled_compiler_demotes_to_packed(monkeypatch, fresh_tier):
    monkeypatch.setenv("REPRO_CC", "disabled")
    assert not compiler_available()
    system = load_system("daio")
    sequence = _workload(system, seed=41)
    outcome = checked_replay(system, sequence)
    reference = _scalar_replay(system, sequence)
    assert outcome.backend == "packed"
    assert any("compiled unavailable" in reason for reason in outcome.demotions)
    assert (outcome.first_violation, outcome.violated_property) == (
        reference.first_violation,
        reference.violated_property,
    )


@needs_cc
def test_disabled_sentinel_beats_prebuilt_kernel(monkeypatch, fresh_tier):
    """REPRO_CC=disabled must shut the native tier even with a cached .so."""
    system = load_system("arbiter")
    build_kernel(system, cache_dir=fresh_tier)
    monkeypatch.setenv("REPRO_CC", "off")
    from repro.kernels.build import KernelUnavailable

    with pytest.raises(KernelUnavailable):
        build_kernel(system, cache_dir=fresh_tier)


def test_both_python_tiers_disabled_still_answers():
    system = load_system("tlc")
    sequence = _workload(system, seed=55)
    outcome = checked_replay(system, sequence, use_compiled=False, use_packed=False)
    reference = _scalar_replay(system, sequence)
    assert outcome.backend == "scalar"
    assert (outcome.first_violation, outcome.violated_property) == (
        reference.first_violation,
        reference.violated_property,
    )


# ---------------------------------------------------------------------------
# the kernel-miscompile chaos fault: caught, demoted, never believed
# ---------------------------------------------------------------------------


@needs_cc
def test_kernel_miscompile_fault_raises_mismatch():
    system = load_system("daio")
    sequence = _workload(system, seed=67)
    kernel = kernels.get_kernel(system)
    with plan_installed(FaultPlan(rates={KERNEL_MISCOMPILE: 1.0})):
        with pytest.raises(KernelMismatch):
            kernel.replay_checked(sequence)


@needs_cc
@pytest.mark.parametrize("design", ["daio", "huffman_dec"])
def test_kernel_miscompile_fault_demotes_not_lies(design):
    """Under a 100% miscompile fault the tier ladder falls back to packed and
    the verdict is byte-identical to the scalar reference — a corrupted
    kernel may cost speed, never an answer."""
    system = load_system(design)
    sequence = _workload(system, seed=71)
    reference = _scalar_replay(system, sequence)
    with plan_installed(FaultPlan(rates={KERNEL_MISCOMPILE: 1.0})):
        outcome = checked_replay(system, sequence)
    assert outcome.backend != "compiled"
    assert any("compiled demoted" in reason for reason in outcome.demotions)
    assert (outcome.first_violation, outcome.violated_property) == (
        reference.first_violation,
        reference.violated_property,
    )


@needs_cc
def test_first_attempt_only_plans_clear_on_retry():
    """A retried attempt runs clean under first_attempt_only plans, so the
    compiled tier comes back after a transient miscompile draw."""
    from repro.faults import injection

    system = load_system("arbiter")
    sequence = _workload(system, seed=83)
    with plan_installed(FaultPlan(rates={KERNEL_MISCOMPILE: 1.0})):
        injection.set_attempt(1)
        outcome = checked_replay(system, sequence)
    assert outcome.backend == "compiled"
    assert outcome.demotions == []


# ---------------------------------------------------------------------------
# unsupported designs degrade instead of erroring
# ---------------------------------------------------------------------------


def test_wide_design_is_kernel_unavailable(fresh_tier):
    from repro.kernels.build import KernelUnavailable
    from repro.netlist import TransitionSystem
    from repro.exprs import bv_add, bv_const, bv_ne, bv_var

    system = TransitionSystem(name="wide96")
    wide = system.add_state_var("acc", 96, init=0)
    system.set_next("acc", bv_add(wide, bv_const(1, 96)))
    system.add_property("nonzero", bv_ne(wide, bv_const(7, 96)))
    system.validate()
    with pytest.raises(KernelUnavailable):
        build_kernel(system, cache_dir=fresh_tier)
    # the tier ladder still answers through pure Python
    outcome = checked_replay(system, [{} for _ in range(10)])
    assert outcome.backend in ("packed", "scalar")
    assert outcome.first_violation == 7
