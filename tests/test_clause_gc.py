"""Learned-clause database garbage collection."""

import itertools

import pytest

from repro.sat.solver import Solver, SolverResult


def add_pigeonhole(solver: Solver, pigeons: int, holes: int) -> None:
    """The classic conflict-heavy UNSAT family: p pigeons into p-1 holes."""
    var = {}
    for pigeon in range(pigeons):
        for hole in range(holes):
            var[pigeon, hole] = solver.new_var()
    for pigeon in range(pigeons):
        solver.add_clause([var[pigeon, hole] for hole in range(holes)])
    for hole in range(holes):
        for first, second in itertools.combinations(range(pigeons), 2):
            solver.add_clause([-var[first, hole], -var[second, hole]])


def test_reduction_triggers_and_preserves_unsat():
    solver = Solver(reduce_base=100)
    add_pigeonhole(solver, 7, 6)
    assert solver.solve() == SolverResult.UNSAT
    assert solver.stats.reduce_db > 0
    assert solver.stats.deleted_clauses > 0
    # deleted clauses are emptied in place; ids and the original problem
    # clauses are untouched
    assert any(not solver.clause_literals(cid) for cid in range(solver.num_clauses))
    for cid in range(solver.num_clauses):
        if not solver.is_learned(cid):
            assert solver.clause_literals(cid)


def test_reduction_matches_unreduced_verdict():
    for pigeons, holes, expected in ((6, 5, SolverResult.UNSAT), (5, 5, SolverResult.SAT)):
        reduced = Solver(reduce_base=50)
        baseline = Solver(reduce_base=10**9)
        add_pigeonhole(reduced, pigeons, holes)
        add_pigeonhole(baseline, pigeons, holes)
        assert reduced.solve() == expected
        assert baseline.solve() == expected
        assert baseline.stats.reduce_db == 0


def test_sat_model_still_checks_after_reduction():
    # a satisfiable instance hard enough to trigger reductions; the solver's
    # internal _check_model asserts the model against every live clause
    solver = Solver(reduce_base=50)
    add_pigeonhole(solver, 6, 6)
    assert solver.solve() == SolverResult.SAT
    model = solver.model()
    assert model  # a full assignment was produced


def test_incremental_solving_across_reductions():
    solver = Solver(reduce_base=50)
    add_pigeonhole(solver, 6, 5)
    assert solver.solve() == SolverResult.UNSAT
    # the solver stays usable for further queries after reducing
    fresh = [solver.new_var() for _ in range(3)]
    solver2 = Solver(reduce_base=50)
    add_pigeonhole(solver2, 6, 6)
    assert solver2.solve() == SolverResult.SAT
    assert solver2.solve(assumptions=[solver2.new_var()]) == SolverResult.SAT


def test_proof_logging_disables_reduction():
    solver = Solver(proof=True, reduce_base=10)
    add_pigeonhole(solver, 6, 5)
    assert solver.solve() == SolverResult.UNSAT
    assert solver.stats.reduce_db == 0
    assert solver.final_proof is not None


def test_glue_and_locked_clauses_survive():
    solver = Solver(reduce_base=30)
    add_pigeonhole(solver, 7, 6)
    assert solver.solve() == SolverResult.UNSAT
    # every surviving learned clause is either small or was recently useful;
    # at minimum, no live learned clause with LBD <= 2 was deleted
    for cid, lbd in solver._learned_lbd.items():
        assert solver.clause_literals(cid), "live learned clause must not be empty"
