"""Fleet-grade resilience: replication, takeover, routing, liveness.

The fleet contract under test extends the single-server "no silent loss"
guarantee across processes: a primary streams its write-ahead journal to a
hot standby, so killing the primary turns accepted-but-unanswered requests
into a takeover-requeue instead of a restart-NACK; a router health-checks
members, shards by certificate-store key prefix and fails clients over
transparently; long computations stream progress frames that double as
per-request liveness.  These tests run real servers (and the router) on
unix sockets inside the test process, with real supervised verifications
behind them.
"""

import asyncio
import os
import threading
import time

import pytest

from repro.engines import Status
from repro.engines.supervision import RetryPolicy, WorkerSupervisor
from repro.faults.injection import plan_installed
from repro.faults.plan import HANG_HARD, REPL_LINK_DROP, FaultPlan
from repro.obs.export import Trace, lint_trace, stitch_traces
from repro.serve import (
    MemberSpec,
    RequestJournal,
    RouterConfig,
    ServeClient,
    ServerConfig,
    VerifyRouter,
    VerifyServer,
)
from repro.serve.protocol import format_addr, parse_addr


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


class _RunningServer:
    """A VerifyServer running its asyncio loop in a daemon thread."""

    def __init__(self, config):
        self.server = VerifyServer(config)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.server.serve_forever()), daemon=True
        )

    def __enter__(self):
        self.thread.start()
        deadline = time.monotonic() + 30.0
        while not os.path.exists(self.server.config.socket_path):
            if time.monotonic() > deadline:
                raise RuntimeError("server never opened its socket")
            time.sleep(0.02)
        return self.server

    def __exit__(self, *exc_info):
        self.server.request_shutdown()
        self.thread.join(timeout=60.0)
        return False


class _RunningRouter:
    """A VerifyRouter running its asyncio loop in a daemon thread."""

    def __init__(self, config):
        self.router = VerifyRouter(config)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.router.serve_forever()), daemon=True
        )

    def __enter__(self):
        self.thread.start()
        deadline = time.monotonic() + 30.0
        while not os.path.exists(self.router.config.socket_path):
            if time.monotonic() > deadline:
                raise RuntimeError("router never opened its socket")
            time.sleep(0.02)
        return self.router

    def __exit__(self, *exc_info):
        self.router.request_shutdown()
        self.thread.join(timeout=60.0)
        return False


def _sock(tmp_path, name):
    return str(tmp_path / name)


def _wait_for(predicate, timeout_s=15.0, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"{what} not reached within {timeout_s}s")


def _primary_config(tmp_path, **overrides):
    options = dict(
        socket_path=_sock(tmp_path, "primary.sock"),
        cache_dir=str(tmp_path / "cache"),
        journal_path=str(tmp_path / "primary.journal"),
        server_id="box-a",
        default_deadline_s=120.0,
    )
    options.update(overrides)
    return ServerConfig(**options)


def _standby_config(tmp_path, primary_addr, **overrides):
    options = dict(
        socket_path=_sock(tmp_path, "standby.sock"),
        cache_dir=str(tmp_path / "cache"),
        journal_path=str(tmp_path / "standby.journal"),
        role="standby",
        primary_addr=primary_addr,
        takeover_after_s=0.4,
        recover="requeue",
        server_id="box-a2",
        default_deadline_s=120.0,
    )
    options.update(overrides)
    return ServerConfig(**options)


# ---------------------------------------------------------------------------
# address specs
# ---------------------------------------------------------------------------


def test_parse_addr_specs():
    assert parse_addr("unix:/tmp/x.sock") == ("/tmp/x.sock", None, 0)
    assert parse_addr("/tmp/plain.sock") == ("/tmp/plain.sock", None, 0)
    assert parse_addr("tcp:127.0.0.1:7411") == (None, "127.0.0.1", 7411)
    assert parse_addr("10.0.0.5:7411") == (None, "10.0.0.5", 7411)
    # a colon inside a path is not a port
    assert parse_addr("/tmp/dir:with/colon.sock") == (
        "/tmp/dir:with/colon.sock", None, 0,
    )
    assert parse_addr(format_addr(socket_path="/tmp/y.sock")) == (
        "/tmp/y.sock", None, 0,
    )
    assert parse_addr(format_addr(host="h", port=9)) == (None, "h", 9)


# ---------------------------------------------------------------------------
# journal replication: primary -> hot standby
# ---------------------------------------------------------------------------


def test_replication_streams_journal_to_standby(tmp_path):
    primary_config = _primary_config(tmp_path, sync_level="sync")
    with _RunningServer(primary_config) as primary:
        standby_config = _standby_config(
            tmp_path, f"unix:{primary_config.socket_path}"
        )
        with _RunningServer(standby_config) as standby:
            _wait_for(
                lambda: standby.replica.connected,
                what="standby subscription",
            )
            with ServeClient(
                socket_path=primary_config.socket_path, reconnect=False
            ) as client:
                reply = client.verify(design="daio", bound=70)
                assert reply["status"] == Status.UNSAFE
            # sync level: the accept the client saw was acked by the
            # standby before the reply went out
            repl = primary.replication.status()
            assert repl["sync_level"] == "sync"
            assert repl["seq"] >= 2  # accept + answered close
            assert repl["sync_timeouts"] == 0
            _wait_for(
                lambda: primary.replication.lag() == 0,
                what="standby fully acked",
            )
            # the standby's journal is a byte-faithful replica
            _wait_for(
                lambda: standby.journal.read_text()
                == primary.journal.read_text(),
                what="journal convergence",
            )
            assert standby.replica.records_applied >= 2
            assert not standby.replica.promoted


def test_replication_link_drop_resyncs_via_snapshot(tmp_path):
    """Severed replication links must heal by full resubscribe, losing nothing."""
    primary_config = _primary_config(tmp_path)
    plan = FaultPlan(seed=7, rates={REPL_LINK_DROP: 1.0})
    with plan_installed(plan):
        with _RunningServer(primary_config) as primary:
            standby_config = _standby_config(
                tmp_path, f"unix:{primary_config.socket_path}"
            )
            with _RunningServer(standby_config) as standby:
                _wait_for(
                    lambda: standby.replica.connected,
                    what="standby subscription",
                )
                with ServeClient(
                    socket_path=primary_config.socket_path, reconnect=False
                ) as client:
                    client.verify(design="daio", bound=70)
                # every live append was dropped, so convergence must have
                # come through snapshot resyncs
                _wait_for(
                    lambda: standby.journal.read_text()
                    == primary.journal.read_text(),
                    what="journal convergence through link drops",
                )
                assert primary.replication.link_drops >= 1
                assert standby.replica.reconnects >= 2


def test_standby_promotes_and_requeues_open_requests(tmp_path):
    # seed the replicated journal with an accepted-but-unanswered request,
    # exactly what a SIGKILLed primary leaves behind
    journal_path = str(tmp_path / "standby.journal")
    dead = RequestJournal(journal_path)
    dead.accept("orphan-1", {"design": "daio", "bound": 70})
    dead.close()

    standby_config = _standby_config(
        tmp_path, f"unix:{tmp_path / 'never-there.sock'}"
    )
    with _RunningServer(standby_config) as standby:
        # before promotion the standby holds the fort but admits nothing
        with ServeClient(
            socket_path=standby_config.socket_path, reconnect=False
        ) as client:
            with pytest.raises(Exception) as excinfo:
                client.verify(design="daio", bound=70)
            assert "standby" in str(excinfo.value)
        _wait_for(lambda: standby.role == "primary", what="takeover")
        assert standby.counters["takeovers"] == 1
        assert standby.counters["takeover_requeued"] == 1
        # the requeued orphan computes headless into the cache; a client
        # asking the same query afterwards hits warm
        with ServeClient(
            socket_path=standby_config.socket_path, reconnect=False
        ) as client:
            _wait_for(
                lambda: standby.counters["answered"] >= 1,
                what="requeued recovery answered",
            )
            reply = client.verify(design="daio", bound=70)
            assert reply["status"] == Status.UNSAFE
        counters = standby.counters
        assert (
            counters["accepted"]
            == counters["answered"] + counters["cancelled"]
        )


# ---------------------------------------------------------------------------
# the router: sharding, coalescing, health, failover
# ---------------------------------------------------------------------------


def test_router_routes_heartbeats_and_coalesces(tmp_path):
    config_a = _primary_config(
        tmp_path, socket_path=_sock(tmp_path, "a.sock"), server_id="box-a",
        cache_dir=str(tmp_path / "cache-a"),
        journal_path=str(tmp_path / "a.journal"),
    )
    config_b = _primary_config(
        tmp_path, socket_path=_sock(tmp_path, "b.sock"), server_id="box-b",
        cache_dir=str(tmp_path / "cache-b"),
        journal_path=str(tmp_path / "b.journal"),
    )
    with _RunningServer(config_a), _RunningServer(config_b):
        router_config = RouterConfig(
            socket_path=_sock(tmp_path, "router.sock"),
            members=[
                MemberSpec("box-a", f"unix:{config_a.socket_path}"),
                MemberSpec("box-b", f"unix:{config_b.socket_path}"),
            ],
            heartbeat_interval_s=0.1,
        )
        with _RunningRouter(router_config) as router:
            _wait_for(
                lambda: all(m.healthy for m in router.members),
                what="both members healthy",
            )
            with ServeClient(
                socket_path=router_config.socket_path, reconnect=False
            ) as client:
                assert client.hello["role"] == "router"
                reply = client.verify(design="daio", bound=70)
                assert reply["status"] == Status.UNSAFE
                assert reply["member"] in ("box-a", "box-b")
                # heartbeat replies carry member gauges back to the router
                _wait_for(
                    lambda: all(
                        m.health.get("queue_depth") is not None
                        for m in router.members
                    ),
                    what="heartbeat gauges",
                )
                status = client.status()
                assert status["role"] == "router"
                assert len(status["members"]) == 2
                assert all(m["healthy"] for m in status["members"])

            # two concurrent identical queries from different client boxes
            # coalesce at the router: one forward, two replies
            barrier = threading.Barrier(2)
            replies = []
            lock = threading.Lock()

            def one_client():
                with ServeClient(
                    socket_path=router_config.socket_path, reconnect=False
                ) as c:
                    barrier.wait()
                    accepted = c.submit({"design": "rcu", "bound": 24})
                    r = c.result(accepted["id"])
                    with lock:
                        replies.append(r)

            threads = [threading.Thread(target=one_client) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            assert len(replies) == 2
            assert {r["status"] for r in replies} == {Status.SAFE}
            assert router.counters["coalesced"] >= 1
            assert router.counters["answered"] >= 3
            assert router.counters["duplicate_replies_suppressed"] == 0


def test_router_role_gates_member_addresses(tmp_path):
    """The router must serve via whichever member address says role=primary."""
    primary_config = _primary_config(tmp_path)
    with _RunningServer(primary_config):
        standby_config = _standby_config(
            tmp_path, f"unix:{primary_config.socket_path}",
            takeover_after_s=3600.0,  # never promotes during the test
        )
        with _RunningServer(standby_config):
            # the member's *first* address points at the standby: the hello
            # role gate must skip it and connect to the real primary
            router_config = RouterConfig(
                socket_path=_sock(tmp_path, "router.sock"),
                members=[
                    MemberSpec(
                        "box-a",
                        f"unix:{standby_config.socket_path}",
                        f"unix:{primary_config.socket_path}",
                    ),
                ],
                heartbeat_interval_s=0.1,
            )
            with _RunningRouter(router_config) as router:
                _wait_for(
                    lambda: router.members[0].healthy, what="member healthy"
                )
                assert router.members[0].connected_addr == (
                    f"unix:{primary_config.socket_path}"
                )
                with ServeClient(
                    socket_path=router_config.socket_path, reconnect=False
                ) as client:
                    reply = client.verify(design="daio", bound=70)
                    assert reply["status"] == Status.UNSAFE


# ---------------------------------------------------------------------------
# client failover: reconnect with resubmit
# ---------------------------------------------------------------------------


def test_client_reconnects_and_resubmits_across_server_restart(tmp_path):
    config = _primary_config(tmp_path)
    running = _RunningServer(config)
    running.__enter__()
    second = _RunningServer(_primary_config(tmp_path))
    client = ServeClient(socket_path=config.socket_path, timeout=60.0)
    try:
        assert client.verify(design="daio", bound=70)["status"] == Status.UNSAFE
        # take the server down; the journal and cache survive on disk
        running.__exit__(None, None, None)

        def restart_soon():
            time.sleep(0.3)
            second.__enter__()

        restarter = threading.Thread(target=restart_soon, daemon=True)
        restarter.start()
        # the very next call rides the backoff loop onto the new process,
        # resubmitting the pending id it could not deliver
        reply = client.verify(design="daio", bound=70)
        assert reply["status"] == Status.UNSAFE
        assert reply["source"] == "cache"
        assert client.reconnects >= 1
        assert client.resubmitted >= 1
        restarter.join()
    finally:
        client.close()
        second.__exit__(None, None, None)


# ---------------------------------------------------------------------------
# streamed liveness
# ---------------------------------------------------------------------------


def test_progress_frames_stream_to_waiting_clients(tmp_path):
    config = _primary_config(tmp_path, progress_interval_s=0.2)
    with _RunningServer(config):
        frames = []
        with ServeClient(
            socket_path=config.socket_path, reconnect=False
        ) as client:
            client.on_progress = frames.append
            reply = client.verify(design="daio", bound=70)
            assert reply["status"] == Status.UNSAFE
        # every computation announces at least its attempt start
        assert frames, "no progress frames during a computation"
        kinds = {frame.get("kind") for frame in frames}
        assert "attempt" in kinds or "progress" in kinds
        assert all(frame["op"] == "progress" for frame in frames)
        assert all("elapsed_s" in frame for frame in frames)


def _sleepy_worker(payload):
    time.sleep(120.0)
    return payload


def test_run_map_stall_event_kills_and_retires_attempt():
    import multiprocessing

    supervisor = WorkerSupervisor(
        multiprocessing.get_context("fork"),
        retry=RetryPolicy(max_attempts=1, backoff_s=0.01),
    )
    stall = threading.Event()
    events = []

    def trip_stall():
        time.sleep(0.5)
        stall.set()

    threading.Thread(target=trip_stall, daemon=True).start()
    t0 = time.monotonic()
    outcomes = supervisor.run_map(
        ["unit"], _sleepy_worker, jobs=1, timeout=120.0,
        stall=stall, on_event=events.append,
    )
    wall = time.monotonic() - t0
    assert outcomes[0].state == "timed-out"
    assert "liveness" in outcomes[0].reason
    assert wall < 60.0  # the stall kill, not the budget, ended the attempt
    assert any(e["event"] == "stall-killed" for e in events)
    assert not stall.is_set()  # one kill per trip: the event was consumed


def test_wedged_request_killed_by_liveness_monitor(tmp_path):
    """No progress inside the window -> wedged -> killed -> retried clean."""
    config = _primary_config(tmp_path, progress_timeout_s=1.0)
    # hang-hard wedges the first attempt's SAT search unconditionally; the
    # only thing that can end it is the server's liveness monitor noticing
    # the silent progress stream and setting the stall event
    plan = FaultPlan(seed=3, rates={HANG_HARD: 1.0})
    with plan_installed(plan):
        with _RunningServer(config) as server:
            with ServeClient(
                socket_path=config.socket_path, reconnect=False, timeout=120.0
            ) as client:
                reply = client.verify(design="daio", bound=70, deadline_s=90.0)
                # the retried attempt ran clean and still answered correctly
                assert reply["status"] == Status.UNSAFE
            assert server.counters["wedged_kills"] >= 1
            assert server.counters["accepted"] == (
                server.counters["answered"] + server.counters["cancelled"]
            )


# ---------------------------------------------------------------------------
# fleet ops: heartbeat + status
# ---------------------------------------------------------------------------


def test_heartbeat_and_status_ops(tmp_path):
    config = _primary_config(tmp_path)
    with _RunningServer(config):
        with ServeClient(
            socket_path=config.socket_path, reconnect=False
        ) as client:
            client.verify(design="daio", bound=70)
            beat = client.heartbeat()
            assert beat["role"] == "primary"
            assert beat["server_id"] == "box-a"
            assert beat["accepted"] == 1
            assert beat["queue_depth"] == 0
            assert beat["uptime_s"] > 0
            status = client.status()
            assert status["role"] == "primary"
            assert status["replication"]["sync_level"] == "async"
            assert status["counters"]["answered"] == 1
            assert status["uptime_s"] > 0


# ---------------------------------------------------------------------------
# cross-box trace stitching
# ---------------------------------------------------------------------------


def _mini_trace(pid, name, request_id, extra_spans=()):
    spans = [
        {
            "id": 1, "parent": None, "name": f"{name}.root", "pid": pid,
            "start": 10.0 + pid, "wall_s": 5.0, "cpu_s": 1.0,
            "outcome": "ok", "attrs": {},
        },
        {
            "id": 2, "parent": 1, "name": f"{name}.request", "pid": pid,
            "start": 11.0 + pid, "wall_s": 2.0, "cpu_s": 0.5,
            "outcome": "ok", "attrs": {"request": request_id},
        },
        *extra_spans,
    ]
    return Trace(
        header={"type": "header", "format": "repro-trace-v1", "created": 0.0,
                "pid": pid, "dropped_spans": 0},
        spans=spans,
        counters={f"{name}.n": 1},
    )


def test_stitch_traces_builds_fleet_roots_and_lints_clean():
    router_trace = _mini_trace(100, "router", "rt-1")
    member_trace = _mini_trace(
        200, "serve", "rt-1",
        extra_spans=[{
            "id": 3, "parent": 2, "name": "engine.bmc", "pid": 200,
            "start": 211.5, "wall_s": 1.0, "cpu_s": 0.9,
            "outcome": "ok", "attrs": {},
        }],
    )
    solo_trace = _mini_trace(300, "serve", "rt-other-box-only")

    stitched = stitch_traces([router_trace, member_trace, solo_trace])
    assert lint_trace(stitched) == []
    roots = [s for s in stitched.spans if s["name"] == "fleet.request"]
    assert len(roots) == 1  # rt-1 crossed boxes; the solo request did not
    root = roots[0]
    assert root["attrs"]["request"] == "rt-1"
    assert sorted(root["attrs"]["boxes"]) == [100, 200]
    stitched_children = [
        s for s in stitched.spans if s.get("parent") == root["id"]
    ]
    assert {s["name"] for s in stitched_children} == {
        "router.request", "serve.request",
    }
    # the engine span under the member's request span kept its local parent
    engine = next(s for s in stitched.spans if s["name"] == "engine.bmc")
    serve_request = next(
        s for s in stitched.spans
        if s["name"] == "serve.request"
        and (s["attrs"] or {}).get("request") == "rt-1"
    )
    assert engine["parent"] == serve_request["id"]
    # counters merged
    assert stitched.counters["router.n"] == 1
    assert stitched.counters["serve.n"] == 2
