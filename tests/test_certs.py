"""Certificates: serialization, independent validation, adjudication, exit codes."""

import json

import pytest

from repro.benchmarks import get_benchmark
from repro.certs import (
    CertificateError,
    InductiveCertificate,
    KInductiveCertificate,
    Witness,
    certificate_from_json,
    dumps,
    expr_from_json,
    expr_to_json,
    loads,
    validate_certificate,
    validate_result,
    witness_from_counterexample,
)
from repro.certs.exprjson import ExprJsonError
from repro.engines import Status, make_engine
from repro.exprs import TRUE, bool_and, bv_const, bv_ule, bv_var


def _verify(engine_name, design, **options):
    benchmark = get_benchmark(design)
    system = benchmark.load()
    result = make_engine(engine_name, system, **options).verify(timeout=90)
    return system, result


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------


def test_expr_json_round_trip():
    expr = bool_and(
        bv_ule(bv_var("x", 8), bv_const(200, 8)),
        bv_var("flag", 1),
        bv_var("y", 4).bit(2),
    )
    assert expr_from_json(expr_to_json(expr)) == expr


def test_expr_json_rejects_malformed():
    with pytest.raises(ExprJsonError):
        expr_from_json(["o", "no-such-op", 1, [], [["c", 0, 1]]])
    with pytest.raises(ExprJsonError):
        expr_from_json(["c", "not-an-int", 4])
    with pytest.raises(ExprJsonError):
        expr_from_json([])


def test_certificate_json_round_trips():
    witness = Witness("p", "bmc", ({"a": 1, "b": 0}, {"a": 0, "b": 3}))
    inductive = InductiveCertificate("p", "pdr", bv_ule(bv_var("x", 4), bv_const(9, 4)))
    k_inductive = KInductiveCertificate(
        "p", "kiki", k=3, simple_path=True, invariants=(bv_var("ok", 1),)
    )
    for certificate in (witness, inductive, k_inductive):
        assert loads(dumps(certificate)) == certificate


def test_certificate_json_rejects_malformed():
    with pytest.raises(CertificateError):
        certificate_from_json({"format": "other", "kind": "witness"})
    with pytest.raises(CertificateError):
        certificate_from_json(
            {"format": "repro-cert-v1", "kind": "nonsense", "property": "p", "engine": "e"}
        )
    with pytest.raises(CertificateError):
        certificate_from_json(
            {"format": "repro-cert-v1", "kind": "k-inductive", "property": "p",
             "engine": "e", "k": 0}
        )


def test_witness_aiger_stimulus_export():
    from repro.aig import aig_from_transition_system

    system, result = _verify("bmc", "daio", max_bound=70)
    stimulus = result.certificate.to_aiger_stimulus(aig_from_transition_system(system))
    lines = stimulus.strip().split("\n")
    input_bits = sum(system.inputs.values())
    assert len(lines) == result.counterexample.length
    assert all(len(line) == input_bits and set(line) <= {"0", "1"} for line in lines)


# ---------------------------------------------------------------------------
# witnesses
# ---------------------------------------------------------------------------


def test_counterexample_fully_valuates_inputs():
    system, result = _verify("bmc", "daio", max_bound=70)
    for step in result.counterexample.steps:
        for name in system.inputs:
            assert name in step
    sequence = result.counterexample.input_sequence(dict(system.inputs))
    assert all(set(cycle) == set(system.inputs) for cycle in sequence)


def test_witness_validates_by_concrete_replay():
    system, result = _verify("bmc", "daio", max_bound=70)
    validation = validate_result(system, result)
    assert validation.ok
    assert validation.kind == "witness"
    assert "cycle 64" in validation.reason


def test_tampered_witness_fails_replay():
    system, result = _verify("bmc", "daio", max_bound=70)
    witness = result.certificate
    truncated = Witness(witness.property_name, witness.engine, witness.inputs[:10])
    validation = validate_certificate(system, truncated)
    assert not validation.ok
    assert "never violates" in validation.reason


def test_witness_validates_claimed_property_on_multi_property_design():
    """Another property failing earlier must not mask the claimed violation."""
    from repro.exprs import bv_ne
    from repro.netlist import TransitionSystem

    system = TransitionSystem("two_props")
    system.add_input("inc", 1)
    counter = system.add_state_var("counter", 4, init=0)
    system.set_next("counter", counter + bv_const(1, 4))
    system.add_property("fails_at_2", bv_ne(counter, bv_const(2, 4)))
    system.add_property("fails_at_5", bv_ne(counter, bv_const(5, 4)))
    system.validate()

    result = make_engine("bmc", system, max_bound=10).verify("fails_at_5", timeout=30)
    assert result.status == Status.UNSAFE
    validation = validate_result(system, result)
    assert validation.ok, validation.reason
    assert "cycle 5" in validation.reason


def test_witness_for_unknown_property_fails():
    system, result = _verify("bmc", "daio", max_bound=70)
    renamed = Witness("no_such_property", "bmc", result.certificate.inputs)
    validation = validate_certificate(system, renamed)
    assert not validation.ok


# ---------------------------------------------------------------------------
# safety certificates
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "engine_name,design,kind",
    [
        ("pdr", "huffman_dec", "inductive"),
        ("interpolation", "huffman_dec", "inductive"),
        ("impact", "huffman_dec", "inductive"),
        ("predabs", "huffman_dec", "inductive"),
        ("absint", "arbiter", "inductive"),
        ("k-induction", "buffalloc", "k-inductive"),
        ("kiki", "huffman_dec", "k-inductive"),
    ],
)
def test_safe_certificates_validate(engine_name, design, kind):
    system, result = _verify(engine_name, design)
    assert result.status == Status.SAFE
    assert result.certificate is not None
    assert result.certificate.kind == kind
    assert result.certificate.engine == result.engine
    validation = validate_result(system, result)
    assert validation.ok, validation.reason
    # the certificate survives a JSON round trip and still validates
    revived = loads(dumps(result.certificate))
    assert validate_certificate(system, revived).ok


def test_forged_trivial_invariant_fails():
    system = get_benchmark("huffman_dec").load()
    forged = InductiveCertificate(system.properties[0].name, "oracle", TRUE)
    validation = validate_certificate(system, forged)
    assert not validation.ok
    failed = {o.name for o in validation.failed_obligations()}
    assert "property" in failed  # TRUE does not exclude the unreachable bad states


def test_non_inductive_invariant_fails_consecution():
    system = get_benchmark("huffman_dec").load()
    # node == 0 holds initially and implies the property but is not inductive
    bogus = InductiveCertificate(
        system.properties[0].name,
        "test",
        bv_var("node", 3).eq(bv_const(0, 3)),
    )
    validation = validate_certificate(system, bogus)
    assert not validation.ok
    assert {o.name for o in validation.failed_obligations()} == {"consecution"}


def test_invariant_over_non_state_signals_rejected():
    system = get_benchmark("huffman_dec").load()
    bogus = InductiveCertificate(
        system.properties[0].name, "test", bv_var("bit", 1)
    )
    validation = validate_certificate(system, bogus)
    assert not validation.ok
    assert "non-state signal" in validation.reason


def test_k_inductive_with_bogus_aux_invariant_fails():
    from repro.exprs import bv_ne, evaluate

    system, result = _verify("k-induction", "buffalloc")
    genuine = result.certificate
    # an auxiliary invariant that is false in the initial state can never
    # be admitted by the validator
    flat = system.flattened()
    name, width = next(iter(flat.state_vars.items()))
    init_value = evaluate(flat.init[name], {})
    bogus = KInductiveCertificate(
        genuine.property_name,
        genuine.engine,
        genuine.k,
        genuine.simple_path,
        invariants=(bv_ne(bv_var(name, width), bv_const(init_value, width)),),
    )
    validation = validate_certificate(system, bogus)
    assert not validation.ok
    assert "aux-init" in {o.name for o in validation.failed_obligations()}


def test_certificate_kind_must_match_status():
    system, result = _verify("pdr", "huffman_dec")
    result.status = Status.UNSAFE  # claim flipped, certificate kept
    validation = validate_result(system, result)
    assert not validation.ok
    assert "cannot justify" in validation.reason


def test_missing_certificate_fails_validation():
    system, result = _verify("pdr", "huffman_dec")
    result.certificate = None
    validation = validate_result(system, result)
    assert not validation.ok
    assert "no certificate" in validation.reason


# ---------------------------------------------------------------------------
# the fault-injection oracle
# ---------------------------------------------------------------------------


def test_oracle_forged_certificates_fail_validation():
    system = get_benchmark("daio").load()
    safe_claim = make_engine("oracle", system, claim=Status.SAFE).verify(timeout=10)
    assert safe_claim.status == Status.SAFE
    assert not validate_result(system, safe_claim).ok
    unsafe_claim = make_engine("oracle", system, claim=Status.UNSAFE).verify(timeout=10)
    assert unsafe_claim.status == Status.UNSAFE
    assert not validate_result(system, unsafe_claim).ok


def test_witness_helper_defaults_missing_inputs_to_zero():
    from repro.engines.result import Counterexample

    system = get_benchmark("daio").load()
    cex = Counterexample(system.properties[0].name, [{}, {}])
    witness = witness_from_counterexample(system, "test", cex)
    assert witness.length == 2
    for cycle in witness.inputs:
        assert set(cycle) == set(system.inputs)
        assert all(value == 0 for value in cycle.values())


# ---------------------------------------------------------------------------
# CLI exit codes (CI-gateable contract)
# ---------------------------------------------------------------------------


def test_cli_exit_codes(capsys):
    from repro.tools.verify_cli import main

    # 0: validated expected verdict
    assert main(["daio", "--engine", "bmc", "--bound", "80", "--certify"]) == 0
    # 2: wrong verdict against known ground truth
    assert main(["daio", "--engine", "oracle", "--timeout", "10"]) == 2
    # 3: inconclusive (bmc cannot refute within a tiny bound)
    assert main(["huffman_dec", "--engine", "bmc", "--bound", "3"]) == 3
    capsys.readouterr()


def test_cli_certify_demotes_unvalidated_verdict(capsys):
    from repro.tools.verify_cli import main

    # the oracle's SAFE claim on a safe design matches the ground truth but
    # its forged certificate cannot be validated -> WRONG under --certify
    assert main(["huffman_dec", "--engine", "oracle", "--timeout", "10"]) == 0
    assert main(["huffman_dec", "--engine", "oracle", "--certify", "--timeout", "10"]) == 2
    out = capsys.readouterr().out
    assert "NOT VALIDATED" in out


def test_cli_saves_certificate_and_stimulus(tmp_path, capsys):
    from repro.tools.verify_cli import main

    path = tmp_path / "daio.cert.json"
    code = main(
        ["daio", "--engine", "bmc", "--bound", "80",
         "--save-certificate", str(path)]
    )
    capsys.readouterr()
    assert code == 0
    document = json.loads(path.read_text())
    assert document["format"] == "repro-cert-v1"
    assert document["kind"] == "witness"
    cex = tmp_path / "daio.cert.cex"
    assert cex.exists()
    assert len(cex.read_text().strip().split("\n")) == 65
