"""Benchmark suite integrity: the twelve designs and their ground truth."""

import pytest

import repro.benchmarks as benchmarks
from repro.benchmarks import BENCHMARKS, Benchmark, benchmark_names, get_benchmark, load_system
from repro.engines.bmc import BMCEngine
from repro.engines.kinduction import KInductionEngine


def test_package_exports():
    assert benchmarks.Benchmark is Benchmark
    assert set(benchmark_names()) == set(BENCHMARKS)
    assert len(BENCHMARKS) == 12


def test_all_benchmarks_build_and_validate():
    for name in benchmark_names():
        system = load_system(name)
        assert system.name == name
        assert system.properties, name
        system.validate()


def test_metadata_consistency():
    for name, bench in BENCHMARKS.items():
        assert bench.expected in ("safe", "unsafe")
        assert bench.category in ("control", "datapath")
        if bench.expected == "unsafe":
            assert bench.bug_cycle is not None and bench.bug_cycle > 0
        else:
            assert bench.bug_cycle is None


def test_documented_bug_cycles():
    assert get_benchmark("daio").bug_cycle == 64
    assert get_benchmark("tlc").bug_cycle == 65


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError):
        get_benchmark("no_such_design")


@pytest.mark.parametrize("name", ["daio", "tlc"])
def test_unsafe_bug_cycle_is_exact(name):
    bench = get_benchmark(name)
    system = bench.load()
    result = BMCEngine(system, max_bound=bench.bug_cycle + 1).verify(timeout=120)
    assert result.status == "unsafe"
    assert result.detail["bound"] == bench.bug_cycle
    assert result.counterexample is not None
    assert result.counterexample.length == bench.bug_cycle + 1


@pytest.mark.parametrize(
    "name", [n for n, b in BENCHMARKS.items() if b.expected == "safe"]
)
def test_safe_benchmarks_are_k_inductive(name):
    system = load_system(name)
    result = KInductionEngine(system, max_k=8).verify(timeout=60)
    assert result.status == "safe", (name, result.reason)
