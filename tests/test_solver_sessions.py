"""Persistent-session solver features: retraction, minimization, binary watches.

Covers the PR-4 solver work: activation-literal retirement (retired groups no
longer constrain, their guarded learned clauses are garbage-collected,
``failed_assumptions`` stays correct afterwards), self-subsuming conflict
minimization (every learned clause — minimized or not — is still implied by
the original clauses, and the recorded resolution chains derive exactly the
learned clauses), the binary-clause watch fast path (cross-checked against
brute force on random CNFs), the indexed VSIDS heap invariants, and
interpolation from UNSAT-under-assumption queries.
"""

import itertools
import random

from repro.sat.cnf import CNF, var_of
from repro.sat.interpolate import Interpolator, itp_evaluate
from repro.sat.solver import Solver, SolverResult


def _pigeonhole_clauses(holes):
    """PHP(holes+1, holes) clause list over variables 1..holes*(holes+1)."""
    pigeons = holes + 1
    var = {}
    count = 0
    for p in range(pigeons):
        for h in range(holes):
            count += 1
            var[p, h] = count
    clauses = [[var[p, h] for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var[p1, h], -var[p2, h]])
    return count, clauses


# ---------------------------------------------------------------------------
# activation-literal retraction
# ---------------------------------------------------------------------------


def test_retired_group_no_longer_constrains():
    solver = Solver()
    x, y = solver.new_vars(2)
    act = solver.new_var()
    solver.add_clause([-act, x])
    solver.add_clause([-act, -x])  # contradiction while act is assumed
    assert solver.solve(assumptions=[act]) == SolverResult.UNSAT
    solver.retire_activation(act)
    assert solver.stats.retired_activations == 1
    assert solver.solve() == SolverResult.SAT
    # both polarities of x are free again
    assert solver.solve(assumptions=[x]) == SolverResult.SAT
    assert solver.solve(assumptions=[-x]) == SolverResult.SAT


def test_retired_guarded_learned_clauses_are_collected():
    solver = Solver()
    num_vars, clauses = _pigeonhole_clauses(4)
    solver.new_vars(num_vars)
    act = solver.new_var()
    for clause in clauses:
        solver.add_clause(clause + [-act])
    assert solver.solve(assumptions=[act]) == SolverResult.UNSAT
    assert solver.stats.learned_clauses > 0
    solver.retire_activation(act)
    # the learned clauses recorded a -act dependency and were swept
    assert solver.stats.retired_clauses > 0
    assert solver.solve() == SolverResult.SAT
    # the swept clauses are really gone from the database (emptied in place)
    emptied = sum(
        1
        for cid in range(solver.num_clauses)
        if solver.is_learned(cid) and not solver.clause_literals(cid)
    )
    assert emptied == solver.stats.retired_clauses


def test_failed_assumptions_correct_after_retraction():
    solver = Solver()
    x, y = solver.new_vars(2)
    act1 = solver.new_var()
    solver.add_clause([-act1, -x])  # act1 -> ¬x
    assert solver.solve(assumptions=[act1, x]) == SolverResult.UNSAT
    assert solver.failed_assumptions <= {act1, x}
    solver.retire_activation(act1)
    assert solver.solve(assumptions=[x]) == SolverResult.SAT
    # a new group over the same variable: the core names the new activation
    act2 = solver.new_var()
    solver.add_clause([-act2, -x])
    assert solver.solve(assumptions=[act2, x, y]) == SolverResult.UNSAT
    assert act1 not in solver.failed_assumptions
    assert solver.failed_assumptions <= {act2, x, y}
    assert y not in solver.failed_assumptions
    # the reported core is itself sufficient for unsatisfiability
    assert solver.solve(assumptions=sorted(solver.failed_assumptions)) == SolverResult.UNSAT


def test_retire_then_extend_session():
    """A retired frame can be replaced by a new group over the same bits."""
    solver = Solver()
    x = solver.new_var()
    act1 = solver.new_var()
    solver.add_clause([-act1, x])
    assert solver.solve(assumptions=[act1, -x]) == SolverResult.UNSAT
    solver.retire_activation(act1)
    act2 = solver.new_var()
    solver.add_clause([-act2, -x])  # opposite constraint, new guard
    assert solver.solve(assumptions=[act2, x]) == SolverResult.UNSAT
    assert solver.solve(assumptions=[act2]) == SolverResult.SAT
    assert solver.model_value(x) is False


# ---------------------------------------------------------------------------
# conflict-clause minimization
# ---------------------------------------------------------------------------


def test_minimization_fires_on_pigeonhole():
    solver = Solver()
    num_vars, clauses = _pigeonhole_clauses(4)
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    assert solver.solve() == SolverResult.UNSAT
    assert solver.stats.minimized_literals > 0


def test_minimized_learned_clauses_still_implied():
    """Soundness: every learned clause follows from the original clauses."""
    rng = random.Random(7)
    num_vars, clauses = _pigeonhole_clauses(4)
    solver = Solver()
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    assert solver.solve() == SolverResult.UNSAT
    learned = [
        solver.clause_literals(cid)
        for cid in range(solver.num_clauses)
        if solver.is_learned(cid) and solver.clause_literals(cid)
    ]
    assert learned
    for clause in rng.sample(learned, min(12, len(learned))):
        checker = Solver()
        checker.new_vars(num_vars)
        for original in clauses:
            checker.add_clause(original)
        for lit in clause:
            checker.add_clause([-lit])
        assert checker.solve() == SolverResult.UNSAT


def test_proof_chains_derive_exactly_the_learned_clauses():
    """Replaying each recorded resolution chain reproduces the clause.

    This pins the proof-correctness of minimization: every removed literal
    appends one more resolution step, so the chain must still derive exactly
    the stored clause.
    """
    solver = Solver(proof=True)
    num_vars, clauses = _pigeonhole_clauses(4)
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    assert solver.solve() == SolverResult.UNSAT
    assert solver.stats.minimized_literals > 0  # the chains include removals
    checked = 0
    for cid in range(solver.num_clauses):
        chain = solver.clause_proof[cid]
        if chain is None or not solver.is_learned(cid):
            continue
        antecedents, pivots = chain
        current = set(solver.clause_literals(antecedents[0]))
        for next_cid, pivot in zip(antecedents[1:], pivots):
            other = set(solver.clause_literals(next_cid))
            assert pivot in {var_of(l) for l in current & {-l for l in other}} or (
                any(var_of(l) == pivot for l in current)
            )
            current = {l for l in current if var_of(l) != pivot} | {
                l for l in other if var_of(l) != pivot
            }
        assert current == set(solver.clause_literals(cid))
        checked += 1
    assert checked > 0


# ---------------------------------------------------------------------------
# binary watch fast path (cross-checked against brute force)
# ---------------------------------------------------------------------------


def _brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause) for clause in clauses
        ):
            return True
    return False


def test_random_binary_heavy_cnfs_match_brute_force():
    rng = random.Random(2024)
    for _ in range(60):
        num_vars = rng.randint(3, 8)
        num_clauses = rng.randint(3, 24)
        clauses = []
        for _ in range(num_clauses):
            width = rng.choice([1, 2, 2, 2, 3])  # binary-heavy
            literals = []
            for _ in range(width):
                var = rng.randint(1, num_vars)
                literals.append(var if rng.random() < 0.5 else -var)
            clauses.append(literals)
        solver = Solver()
        solver.new_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        expected = _brute_force_sat(num_vars, clauses)
        assert (solver.solve() == SolverResult.SAT) is expected


def test_incremental_binary_additions_between_solves():
    solver = Solver()
    a, b, c = solver.new_vars(3)
    solver.add_clause([a, b])
    assert solver.solve() == SolverResult.SAT
    solver.add_clause([-a, c])
    solver.add_clause([-b, c])
    assert solver.solve(assumptions=[-c]) == SolverResult.UNSAT
    assert solver.solve(assumptions=[c]) == SolverResult.SAT


# ---------------------------------------------------------------------------
# indexed VSIDS heap
# ---------------------------------------------------------------------------


def test_order_heap_invariants_after_search():
    solver = Solver()
    num_vars, clauses = _pigeonhole_clauses(4)
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    solver.solve()
    heap = solver._heap
    positions = solver._heap_pos
    # position index and heap agree
    for index, var in enumerate(heap):
        assert positions[var] == index
    in_heap = set(heap)
    for var in range(1, solver.num_vars + 1):
        if positions[var] >= 0:
            assert var in in_heap
    # max-heap property over activities
    for index in range(1, len(heap)):
        parent = (index - 1) >> 1
        assert solver._activity[heap[parent]] >= solver._activity[heap[index]]


def test_heap_contains_no_duplicates():
    solver = Solver()
    num_vars, clauses = _pigeonhole_clauses(3)
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    solver.solve()
    assert len(solver._heap) == len(set(solver._heap))
    # bounded by the variable count: no stale-entry flooding
    assert len(solver._heap) <= solver.num_vars


# ---------------------------------------------------------------------------
# interpolation from assumption-based (retractable) queries
# ---------------------------------------------------------------------------


def test_interpolant_from_assumption_core():
    solver = Solver(proof=True)
    x, y = solver.new_vars(2)
    act_a = solver.new_var()
    act_b = solver.new_var()
    a_ids = [solver.add_clause([-act_a, x]), solver.add_clause([-act_a, -x, y])]
    b_ids = [solver.add_clause([-act_b, -y])]
    assert solver.solve(assumptions=[act_a, act_b]) == SolverResult.UNSAT
    assert solver.final_proof is None
    assert solver.assumption_core_chain is not None
    interpolant = Interpolator(
        solver, a_ids, b_ids, assumptions=[(act_a, "A"), (act_b, "B")]
    ).compute()
    # A implies I, I refutes B: with y the only shared variable, I forces y
    assert itp_evaluate(interpolant, {y: True}) is True
    assert itp_evaluate(interpolant, {y: False}) is False


def test_interpolant_after_frontier_retraction():
    """The same session yields valid interpolants across retractions."""
    solver = Solver(proof=True)
    x, y = solver.new_vars(2)
    b_act = solver.new_var()
    b_ids = [solver.add_clause([-b_act, -y])]
    results = []
    a_ids = []
    previous_act = None
    for frontier in ([x], [-x, y], [y]):
        if previous_act is not None:
            a_ids.append(solver.retire_activation(previous_act))
        act = solver.new_var()
        a_ids.append(solver.add_clause([-act] + [l for l in frontier]))
        a_ids.append(solver.add_clause([-act, y]))  # frontier implies y
        assert solver.solve(assumptions=[act, b_act]) == SolverResult.UNSAT
        interpolant = Interpolator(
            solver, a_ids, b_ids, assumptions=[(act, "A"), (b_act, "B")]
        ).compute()
        assert itp_evaluate(interpolant, {y: True}) is True
        assert itp_evaluate(interpolant, {y: False}) is False
        results.append(interpolant)
        previous_act = act
    assert len(results) == 3
