"""AIG → TransitionSystem lifting: round trips and simulator cross-checks.

The bit-level flow lowers a word-level design to an AIG, serializes it as
ASCII AIGER and lifts it back into a (1-bit-word) transition system
(:func:`repro.aig.bitblast.transition_system_from_aig`).  These tests assert
the paper's Section III.C equivalence argument on that path: the lifted
model agrees with the word-level reference simulator cycle by cycle, and
bugs manifest in the same clock cycle in both models.
"""

import random

import pytest

from repro.aig import aig_from_transition_system, write_aiger
from repro.aig.bitblast import transition_system_from_aig
from repro.aig.formats import read_aiger
from repro.benchmarks import get_benchmark
from repro.engines import Status, make_engine
from repro.netlist.simulate import Simulator


def _lift_round_trip(system):
    """system -> AIG -> AIGER text -> AIG -> lifted transition system."""
    aig = aig_from_transition_system(system)
    lifted = transition_system_from_aig(read_aiger(write_aiger(aig)))
    lifted.validate()
    return aig, lifted


def _bit_inputs(system, word_inputs):
    """Decompose word-level input values into the lifted ``name[i]`` bits."""
    bits = {}
    for name, width in system.inputs.items():
        value = word_inputs.get(name, 0)
        for index in range(width):
            bits[f"{name}[{index}]"] = (value >> index) & 1
    return bits


def _state_bits(system, state):
    bits = {}
    for name, width in system.state_vars.items():
        for index in range(width):
            bits[f"{name}[{index}]"] = (state[name] >> index) & 1
    return bits


@pytest.mark.parametrize("design", ["huffman_dec", "arbiter", "daio"])
def test_lifting_round_trip_structure(design):
    system = get_benchmark(design).load()
    aig, lifted = _lift_round_trip(system)
    assert len(lifted.inputs) == sum(system.inputs.values())
    assert len(lifted.state_vars) == sum(system.state_vars.values())
    assert len(lifted.properties) == len(system.properties)
    assert {p.name for p in lifted.properties} == {p.name for p in system.properties}
    # reset values survive the round trip
    lifted_sim = Simulator(lifted)
    word_sim = Simulator(system)
    assert lifted_sim.state == _state_bits(system, word_sim.state)


@pytest.mark.parametrize("design", ["huffman_dec", "arbiter"])
def test_lifted_simulation_matches_word_level(design):
    """Random simulation agrees register bit by register bit, cycle by cycle."""
    system = get_benchmark(design).load()
    _, lifted = _lift_round_trip(system)
    word_sim = Simulator(system)
    bit_sim = Simulator(lifted)
    rng = random.Random(2016)
    for cycle in range(64):
        word_inputs = {
            name: rng.getrandbits(width) for name, width in system.inputs.items()
        }
        bit_inputs = _bit_inputs(system, word_inputs)
        # same property verdicts in the current cycle...
        assert word_sim.check_properties(word_inputs) == bit_sim.check_properties(
            bit_inputs
        ), f"property verdicts diverge at cycle {cycle}"
        word_sim.step(word_inputs)
        bit_sim.step(bit_inputs)
        # ... and the same next state, register bit by register bit
        assert bit_sim.state == _state_bits(system, word_sim.state), (
            f"state diverges at cycle {cycle + 1}"
        )


def test_lifted_model_reproduces_bug_in_same_cycle():
    """The daio bug manifests at cycle 64 in the lifted model too (III.C)."""
    benchmark = get_benchmark("daio")
    system = benchmark.load()
    result = make_engine("bmc", system, max_bound=70).verify(timeout=90)
    assert result.status == Status.UNSAFE
    _, lifted = _lift_round_trip(system)
    witness = result.certificate
    bit_sequence = [_bit_inputs(system, step) for step in witness.input_sequence()]
    trace = Simulator(lifted).run(bit_sequence, stop_on_violation=True)
    assert trace.violated_property == result.property_name
    assert len(trace) - 1 == benchmark.bug_cycle
