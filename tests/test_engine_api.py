"""Unified engine API: registry metadata, option routing, capabilities."""

import pytest

from repro.benchmarks import load_system
from repro.engines import (
    Engine,
    EngineOptionError,
    get_registration,
    list_engines,
    make_engine,
)
from repro.engines.registry import ENGINE_REGISTRY


CANONICAL = [
    "bmc",
    "k-induction",
    "interpolation",
    "pdr",
    "kiki",
    "impact",
    "predabs",
    "absint",
    # bit-parallel random simulation: the budget ladder's cheapest refuter
    "rsim",
    # fault injection for the certification layer, not a paper engine
    "oracle",
]


@pytest.fixture(scope="module")
def design():
    return load_system("huffman_dec")


def test_all_engines_registered():
    names = [registration.name for registration in list_engines()]
    assert names == CANONICAL


def test_list_engines_is_deduplicated():
    registrations = list_engines()
    assert len({registration.name for registration in registrations}) == len(registrations)
    # aliases resolve to the same registration object as the canonical name
    for registration in registrations:
        for alias in registration.aliases:
            assert ENGINE_REGISTRY[alias] is ENGINE_REGISTRY[registration.name]


def test_every_engine_subclasses_engine_abc():
    for registration in list_engines():
        assert issubclass(registration.engine_class, Engine)
        assert registration.engine_class.name == registration.name or registration.name
        capabilities = registration.capabilities
        assert capabilities.can_prove or capabilities.can_refute
        assert set(capabilities.representations) <= {"word", "bit"}


def test_capability_declarations():
    assert not get_registration("bmc").capabilities.can_prove
    assert get_registration("bmc").capabilities.can_refute
    assert get_registration("pdr").capabilities.can_prove
    assert not get_registration("absint").capabilities.can_refute


def test_alias_lookup(design):
    for alias, canonical in (("kind", "k-induction"), ("itp", "interpolation"), ("ic3", "pdr")):
        engine = make_engine(alias, design)
        assert engine.name == canonical


def test_unknown_engine_lists_available(design):
    with pytest.raises(KeyError, match="bmc"):
        make_engine("no-such-engine", design)


def test_unknown_option_raises_engine_option_error(design):
    with pytest.raises(EngineOptionError) as excinfo:
        make_engine("bmc", design, max_k=5)
    message = str(excinfo.value)
    assert "max_k" in message
    assert "max_bound" in message  # the error names the supported options


def test_option_routing_drops_unknown_options(design):
    engine = make_engine("bmc", design, ignore_unknown_options=True, max_k=5, max_bound=7)
    assert engine.max_bound == 7
    assert not hasattr(engine, "max_k")


def test_unsupported_representation_is_rejected(design):
    with pytest.raises(EngineOptionError, match="representation"):
        make_engine("impact", design, representation="bit")


def test_portfolio_flag_selects_subset():
    portfolio = {registration.name for registration in list_engines(portfolio_only=True)}
    assert portfolio == {"bmc", "k-induction", "interpolation", "pdr", "kiki"}


def test_registration_is_callable_like_a_constructor(design):
    registration = get_registration("bmc")
    engine = registration(design, max_bound=3)
    assert engine.max_bound == 3
    result = engine.verify(timeout=10)
    assert result.engine == "bmc"
