"""Bit-parallel packed simulation: differential tests against the scalar oracle.

The packed simulator (:mod:`repro.netlist.bitsim`) is a raw-speed tier, so
every test here is a cross-check: packed lanes against the scalar reference
interpreter, per-operator plane lowering against :func:`repro.exprs.evaluate`,
the rsim falsifier's witnesses against the independent certificate validator,
and both scalar simulators (word-level netlist vs AIG graph) against each
other — one scalar oracle, agreed on by every representation.
"""

import random

import pytest

from repro.aig import aig_from_transition_system
from repro.benchmarks import benchmark_names, get_benchmark, load_system
from repro.certs import validate_result
from repro.certs.validate import CertificateValidator
from repro.engines import Status, make_engine
from repro.exprs import (
    bv_add,
    bv_ashr,
    bv_concat,
    bv_extract,
    bv_ite,
    bv_lshr,
    bv_mul,
    bv_neg,
    bv_reduce_and,
    bv_reduce_or,
    bv_reduce_xor,
    bv_shl,
    bv_sign_extend,
    bv_sle,
    bv_slt,
    bv_sub,
    bv_udiv,
    bv_ule,
    bv_ult,
    bv_urem,
    bv_var,
    bv_xor,
    bv_zero_extend,
    evaluate,
)
from repro.netlist.bitsim import (
    PackedSimulator,
    ReachabilitySampler,
    SimulationMismatch,
    broadcast,
    crosscheck_lane,
    evaluate_packed,
    pack_values,
    unpack_lane,
)
from repro.netlist.simulate import Simulator

SUITE = benchmark_names()


# ---------------------------------------------------------------------------
# packing primitives
# ---------------------------------------------------------------------------


def test_pack_unpack_round_trip():
    rng = random.Random(0)
    values = [rng.getrandbits(11) for _ in range(64)]
    planes = pack_values(values, 11)
    assert len(planes) == 11
    assert [unpack_lane(planes, lane) for lane in range(64)] == values


def test_broadcast_fills_every_lane():
    planes = broadcast(0b1011, 4, (1 << 64) - 1)
    for lane in (0, 1, 33, 63):
        assert unpack_lane(planes, lane) == 0b1011


# ---------------------------------------------------------------------------
# per-operator plane lowering vs the scalar expression evaluator
# ---------------------------------------------------------------------------

_BINARY_OPS = [
    bv_add, bv_sub, bv_mul, bv_udiv, bv_urem, bv_xor,
    bv_shl, bv_lshr, bv_ashr,
    bv_ult, bv_ule, bv_slt, bv_sle,
]


@pytest.mark.parametrize("make_op", _BINARY_OPS, ids=lambda f: f.__name__)
@pytest.mark.parametrize("width", [1, 5, 8])
def test_binary_operators_match_scalar(make_op, width):
    """Every lane of the packed result equals the scalar evaluator's answer."""
    lanes, mask = 64, (1 << 64) - 1
    rng = random.Random(hash((make_op.__name__, width)) & 0xFFFF)
    a_vals = [rng.getrandbits(width) for _ in range(lanes)]
    # bias the second operand toward small values so shifts exercise both
    # in-range and >= width amounts, and division sees zero divisors
    b_vals = [
        rng.getrandbits(width) if rng.random() < 0.5 else rng.randrange(0, width + 2)
        for _ in range(lanes)
    ]
    expr = make_op(bv_var("a", width), bv_var("b", width))
    packed = evaluate_packed(
        expr,
        {"a": pack_values(a_vals, width), "b": pack_values(b_vals, width)},
        mask,
    )
    for lane in range(lanes):
        expected = evaluate(expr, {"a": a_vals[lane], "b": b_vals[lane]})
        assert unpack_lane(packed, lane) == expected, (
            f"{make_op.__name__} w={width} lane={lane}: "
            f"a={a_vals[lane]} b={b_vals[lane]}"
        )


@pytest.mark.parametrize(
    "make_expr",
    [
        lambda a: bv_neg(a),
        lambda a: bv_reduce_and(a),
        lambda a: bv_reduce_or(a),
        lambda a: bv_reduce_xor(a),
        lambda a: bv_zero_extend(a, 3),
        lambda a: bv_sign_extend(a, 3),
        lambda a: bv_extract(a, 4, 2),
        lambda a: bv_concat(a, bv_extract(a, 2, 0)),
        lambda a: bv_ite(bv_ult(a, bv_var("b", 6)), a, bv_var("b", 6)),
    ],
    ids=[
        "neg", "redand", "redor", "redxor", "zext", "sext",
        "extract", "concat", "ite",
    ],
)
def test_structural_operators_match_scalar(make_expr):
    lanes, mask, width = 64, (1 << 64) - 1, 6
    rng = random.Random(7)
    a_vals = [rng.getrandbits(width) for _ in range(lanes)]
    b_vals = [rng.getrandbits(width) for _ in range(lanes)]
    expr = make_expr(bv_var("a", width))
    packed = evaluate_packed(
        expr,
        {"a": pack_values(a_vals, width), "b": pack_values(b_vals, width)},
        mask,
    )
    for lane in range(lanes):
        expected = evaluate(expr, {"a": a_vals[lane], "b": b_vals[lane]})
        assert unpack_lane(packed, lane) == expected


# ---------------------------------------------------------------------------
# whole-design lane fuzz: 64 random lanes vs the scalar simulator
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("design", SUITE)
def test_packed_run_agrees_with_scalar_lanes(design):
    """Random packed runs cross-check lane-exactly on every suite design."""
    system = load_system(design)
    simulator = PackedSimulator(system)
    run = simulator.run_random(24, seed=2016, stop_on_violation=False)
    for lane in (0, 17, 63):
        assert crosscheck_lane(system, run, lane) == run.cycles


def test_crosscheck_lane_detects_divergence():
    system = load_system("arbiter")
    simulator = PackedSimulator(system)
    run = simulator.run_random(8, seed=1, stop_on_violation=False)
    # corrupt one recorded register plane: the cross-check must notice
    name, planes = next(iter(run.states[4].items()))
    run.states[4][name] = tuple(plane ^ 1 for plane in planes)
    with pytest.raises(SimulationMismatch):
        crosscheck_lane(system, run, 0)


def test_replay_broadcast_matches_scalar_trace():
    system = load_system("daio")
    rng = random.Random(3)
    sequence = [
        {name: rng.getrandbits(width) for name, width in system.inputs.items()}
        for _ in range(40)
    ]
    run = PackedSimulator(system, lanes=1).replay(sequence)
    scalar = Simulator(system)
    for cycle in range(run.cycles):
        assert run.lane_state(cycle, 0) == scalar.state
        scalar.step(sequence[cycle])


def test_replay_many_keeps_lanes_independent():
    system = load_system("huffman_dec")
    rng = random.Random(11)
    sequences = [
        [
            {name: rng.getrandbits(width) for name, width in system.inputs.items()}
            for _ in range(12)
        ]
        for _ in range(5)
    ]
    run = PackedSimulator(system).replay_many(sequences)
    for lane, sequence in enumerate(sequences):
        scalar = Simulator(system)
        for cycle in range(len(sequence)):
            assert run.lane_state(cycle, lane) == scalar.state
            scalar.step(sequence[cycle])


def test_constraints_kill_lanes_for_violation_reporting():
    """fifo has environment constraints: a lane that breaks them cannot
    report violations from that cycle on (SAT frame semantics)."""
    system = load_system("fifo")
    assert system.constraints, "fifo is the suite's constrained design"
    simulator = PackedSimulator(system)
    run = simulator.run_random(32, seed=5, stop_on_violation=False)
    mask = (1 << simulator.lanes) - 1
    # alive masks only ever shrink
    for earlier, later in zip(run.alive, run.alive[1:]):
        assert later & ~earlier == 0
    # with random inputs some lane violates a constraint eventually
    assert run.alive[-1] != mask


def test_wide_lane_counts_work():
    """Lane counts beyond the machine word (and tiny ones) work unchanged."""
    system = load_system("arbiter")
    for lanes in (1, 128):
        simulator = PackedSimulator(system, lanes=lanes)
        run = simulator.run_random(8, seed=9, stop_on_violation=False)
        assert crosscheck_lane(system, run, lanes - 1) == run.cycles


# ---------------------------------------------------------------------------
# the reachability sampler (candidate-invariant screening)
# ---------------------------------------------------------------------------


def test_sampler_screens_unreachable_claims():
    system = load_system("huffman_dec")
    sampler = ReachabilitySampler(system)
    assert sampler.states, "sampler harvested no states"
    name, width = next(iter(system.state_vars.items()))
    seen = {state[name] for state in sampler.states}
    always_true = bv_ule(bv_var(name, width), bv_var(name, width))
    # false on every sampled state: claims the register avoids all its values
    impossible = bv_ult(bv_var(name, width), bv_var(name, width))
    kept, dropped = sampler.screen_invariants([always_true, impossible])
    assert kept == [always_true]
    assert dropped == 1
    assert seen  # the harvest really found states


def test_sampler_satisfies_cube_is_conservative():
    system = load_system("huffman_dec")
    sampler = ReachabilitySampler(system)
    # unknown signals or out-of-range bits must never claim satisfaction
    assert not sampler.satisfies_cube([("no_such_signal", 0, 1)])


# ---------------------------------------------------------------------------
# the rsim engine: packed falsification with validated witnesses
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("design", ["daio", "tlc"])
def test_rsim_finds_and_certifies_suite_bugs(design):
    benchmark = get_benchmark(design)
    system = benchmark.load()
    result = make_engine("rsim", system).verify(timeout=60)
    assert result.status == Status.UNSAFE
    assert result.detail["scalar_confirmed"] is True
    assert result.counterexample.length - 1 == benchmark.bug_cycle
    for backend in ("scalar", "packed"):
        validation = validate_result(system, result, replay_backend=backend)
        assert validation.ok, (backend, validation.reason)


@pytest.mark.parametrize("design", ["buffalloc", "fifo"])
def test_rsim_stays_unknown_on_safe_designs(design):
    system = load_system(design)
    result = make_engine("rsim", system).verify(timeout=60)
    assert result.status == Status.UNKNOWN


def test_rsim_cannot_prove():
    from repro.engines import get_registration

    capabilities = get_registration("rsim").capabilities
    assert capabilities.can_refute and not capabilities.can_prove


# ---------------------------------------------------------------------------
# the validator's pluggable replay backend (--fast-replay)
# ---------------------------------------------------------------------------


def test_validator_packed_backend_adds_crosscheck_obligation():
    system = load_system("daio")
    result = make_engine("bmc", system, max_bound=70).verify(timeout=90)
    assert result.status == Status.UNSAFE
    packed = validate_result(system, result, replay_backend="packed")
    assert packed.ok
    outcomes = {o.name: o.outcome for o in packed.obligations}
    assert outcomes["replay-crosscheck"] == "holds"
    assert outcomes["violation-reached"] == "holds"
    scalar = validate_result(system, result, replay_backend="scalar")
    assert scalar.ok
    assert "replay-crosscheck" not in {o.name for o in scalar.obligations}


def test_validator_rejects_unknown_backend():
    with pytest.raises(ValueError, match="replay backend"):
        CertificateValidator(load_system("daio"), replay_backend="warp")


# ---------------------------------------------------------------------------
# one scalar oracle: the AIG graph simulator vs the netlist simulator
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("design", ["huffman_dec", "daio", "arbiter"])
def test_aig_and_netlist_simulators_agree(design):
    """The two scalar simulators are one oracle: identical per-cycle property
    verdicts on random stimulus (bad output asserted <=> property violated)."""
    system = load_system(design)
    aig = aig_from_transition_system(system)
    bit_of = {}
    for literal in aig.inputs:
        name = aig.input_names[literal]  # "input[bit]"
        base, _, index = name.rpartition("[")
        bit_of[literal] = (base, int(index.rstrip("]")))
    rng = random.Random(2016)
    word_sequence = [
        {name: rng.getrandbits(width) for name, width in system.inputs.items()}
        for _ in range(48)
    ]
    aig_sequence = [
        {
            literal: bool((inputs[base] >> index) & 1)
            for literal, (base, index) in bit_of.items()
        }
        for inputs in word_sequence
    ]
    bad_values = aig.simulate(aig_sequence)
    scalar = Simulator(system)
    for cycle, inputs in enumerate(word_sequence):
        env = scalar._environment(inputs)
        for prop in system.properties:
            violated = evaluate(prop.expr, env) == 0
            assert bad_values[cycle][prop.name] == violated, (
                f"{design}:{prop.name} diverges at cycle {cycle}"
            )
        scalar.step(inputs)
