"""The verify server: protocol, journal, admission, throttle, end to end.

The serving contract under test is *no silent loss*: every request the
server accepts is answered, cleanly rejected, or journaled for a restart to
NACK.  The unit tests cover each mechanism in isolation (framing, journal
replay through torn tails, bounded-queue admission, throttle feedback); the
end-to-end tests run a real :class:`VerifyServer` on a unix socket with real
supervised verifications behind it.
"""

import io
import json
import multiprocessing
import os
import threading
import time

import asyncio

import pytest

from repro.cache.store import CacheEntry, CertificateStore, StoreLock
from repro.benchmarks import load_system
from repro.engines import Status, make_engine
from repro.serve import (
    AdaptiveThrottle,
    BoundedPriorityQueue,
    PROTOCOL,
    ProtocolError,
    RequestJournal,
    ServeClient,
    ServeError,
    ServerConfig,
    VerifyServer,
)
from repro.serve import journal as journal_mod
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame_blocking,
    write_frame_blocking,
)
from repro.serve.queues import QueueClosed, priority_value


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def test_frame_roundtrip_and_interleaving():
    stream = io.BytesIO()
    docs = [{"op": "ping"}, {"op": "verify", "design": "daio", "bound": 64},
            {"nested": {"a": [1, 2, 3]}}]
    for doc in docs:
        write_frame_blocking(stream, doc)
    stream.seek(0)
    assert [read_frame_blocking(stream) for _ in docs] == docs
    # clean EOF reads as None, not an error
    assert read_frame_blocking(stream) is None


def test_frame_rejects_garbage_and_oversize():
    with pytest.raises(ProtocolError):
        read_frame_blocking(io.BytesIO(b"not-a-length\n{}\n"))
    with pytest.raises(ProtocolError):
        read_frame_blocking(io.BytesIO(b"%d\n" % (MAX_FRAME_BYTES + 1)))
    # a frame whose payload is truncated mid-line is a protocol error too
    frame = encode_frame({"op": "ping"})
    with pytest.raises(ProtocolError):
        read_frame_blocking(io.BytesIO(frame[:-4]))


# ---------------------------------------------------------------------------
# the write-ahead journal
# ---------------------------------------------------------------------------


def test_journal_accept_close_replay_and_compaction(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = RequestJournal(path)
    journal.accept("a", {"design": "daio"})
    journal.accept("b", {"design": "rcu"})
    journal.finish("a", journal_mod.ANSWERED, status="unsafe")
    journal.close()

    report = RequestJournal(path).replay()
    assert report.closed == 1
    assert set(report.open_requests) == {"b"}
    assert report.open_requests["b"] == {"design": "rcu"}

    # compaction keeps exactly the open accepts, atomically
    RequestJournal(path).compact()
    after = RequestJournal(path).replay()
    assert set(after.open_requests) == {"b"} and after.closed == 0


def test_journal_tolerates_torn_tail_and_garbage(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = RequestJournal(path)
    journal.accept("a", {"design": "daio"})
    journal.finish("a", journal_mod.ANSWERED)
    journal.accept("b", {"design": "rcu"})
    journal.close()
    # simulate a crash mid-append: tear the final record's tail
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        handle.truncate(handle.tell() - 9)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n{definitely not json\n")
    report = RequestJournal(path).replay()
    # the torn accept for "b" is lost, the closed pair survives, nothing raises
    assert report.torn_lines >= 1
    assert report.closed == 1
    assert "b" not in report.open_requests


def test_journal_close_without_accept_is_legal(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = RequestJournal(path)
    journal.finish("ghost", journal_mod.CANCELLED)
    journal.close()
    report = RequestJournal(path).replay()
    assert report.open_requests == {} and report.total_records == 1


def test_journal_compaction_races_live_appends(tmp_path):
    """compact() must never drop a record landing concurrently.

    The server compacts on drain while the event loop may still be closing
    requests; the journal's lock makes an in-flight append atomic with
    respect to the replay-then-rename.  Hammer both sides from two threads
    and check the end state parses cleanly and holds every surviving id.
    """
    path = str(tmp_path / "journal.jsonl")
    journal = RequestJournal(path)
    appends = 400
    stop = threading.Event()

    def writer():
        for n in range(appends):
            journal.accept(f"req-{n}", {"design": "daio", "bound": n})
            if n % 3 == 0:
                journal.finish(f"req-{n}", journal_mod.ANSWERED)
        stop.set()

    compactions = 0
    thread = threading.Thread(target=writer)
    thread.start()
    while not stop.is_set():
        journal.compact()
        compactions += 1
    thread.join()
    journal.close()
    assert compactions >= 1

    # no torn lines, and exactly the never-closed ids are open: a lost
    # accept or a lost close would show up as a wrong open set
    report = RequestJournal(path).replay()
    assert report.torn_lines == 0
    expected_open = {f"req-{n}" for n in range(appends) if n % 3 != 0}
    assert set(report.open_requests) == expected_open


# ---------------------------------------------------------------------------
# bounded priority admission queue
# ---------------------------------------------------------------------------


def test_queue_priority_order_and_fifo_within_class():
    async def scenario():
        queue = BoundedPriorityQueue(maxsize=8)
        assert queue.try_put("bulk-1", priority_value("bulk"))
        assert queue.try_put("batch-1", priority_value("batch"))
        assert queue.try_put("interactive-1", priority_value("interactive"))
        assert queue.try_put("batch-2", priority_value(None))  # default: batch
        assert queue.try_put("weird", priority_value("no-such-class"))  # bulk
        order = [await queue.get() for _ in range(5)]
        assert order == ["interactive-1", "batch-1", "batch-2", "bulk-1", "weird"]

    asyncio.run(scenario())


def test_queue_rejects_at_capacity_never_blocks():
    async def scenario():
        queue = BoundedPriorityQueue(maxsize=2)
        assert queue.try_put("a", 1) and queue.try_put("b", 1)
        assert not queue.try_put("c", 0)  # even interactive is refused
        assert queue.rejected == 1 and queue.admitted == 2
        await queue.get()
        assert queue.try_put("c", 0)

    asyncio.run(scenario())


def test_queue_close_wakes_getters_with_queue_closed():
    async def scenario():
        queue = BoundedPriorityQueue(maxsize=2)
        getter = asyncio.ensure_future(queue.get())
        await asyncio.sleep(0)  # let the getter park
        queue.close()
        with pytest.raises(QueueClosed):
            await getter
        assert not queue.try_put("late", 1)

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# adaptive throttle
# ---------------------------------------------------------------------------


def test_throttle_shrinks_under_latency_and_recovers():
    throttle = AdaptiveThrottle(
        min_concurrency=1, max_concurrency=4, target_latency_s=1.0, window=2
    )
    assert throttle.concurrency == 4
    for _ in range(4):
        throttle.observe(10.0)  # far above target
    assert throttle.concurrency == 2
    for _ in range(20):
        throttle.observe(0.01)  # far below target/2
    assert throttle.concurrency == 4  # clamped at max, grown back
    assert throttle.adjustments >= 4


def test_throttle_never_drops_below_min():
    throttle = AdaptiveThrottle(
        min_concurrency=2, max_concurrency=3, target_latency_s=0.5, window=1
    )
    for _ in range(10):
        throttle.observe(30.0)
    assert throttle.concurrency == 2


def test_throttle_adjusts_at_most_once_per_window():
    throttle = AdaptiveThrottle(
        min_concurrency=1, max_concurrency=8, target_latency_s=10.0, window=4
    )
    throttle.observe(0.001)
    throttle.observe(0.001)
    throttle.observe(0.001)
    assert throttle.concurrency == 8 and throttle.adjustments == 0


def test_throttle_idle_windows_decay_stale_ewma_toward_target():
    """A zero-completion window must not leave the pool shrunk forever.

    A burst of slow work pins the EWMA above target and shrinks
    concurrency; if no further work completes, observe() never runs again
    and the stale sample would keep the pool small.  The monitor's tick()
    closes each idle window by decaying the EWMA toward target, growing
    the pool back without a single fresh observation.
    """
    throttle = AdaptiveThrottle(
        min_concurrency=1, max_concurrency=4, target_latency_s=1.0,
        window=1, idle_window_s=0.5,
    )
    for _ in range(6):
        throttle.observe(40.0)  # overload burst
    assert throttle.concurrency == 1
    assert throttle.ewma_latency_s > throttle.target_latency_s

    # ticks inside the idle window are no-ops (the window hasn't closed)
    assert throttle.tick(now=time.monotonic() + 0.1) == 1
    assert throttle.idle_windows == 0

    # then silence: each closed idle window decays the stale sample toward
    # target (never past it — growth still requires evidence of fast work)
    now = time.monotonic()
    for n in range(1, 40):
        throttle.tick(now=now + 0.6 * n)
    assert throttle.idle_windows >= 10
    assert 1.0 < throttle.ewma_latency_s < 1.1  # stale 40s sample released

    # two fast observations now suffice to start growing the pool back;
    # without the decay they would have been swamped by the stale sample
    throttle.observe(0.01)
    throttle.observe(0.01)
    assert throttle.ewma_latency_s < throttle.target_latency_s / 2.0
    for _ in range(6):
        throttle.observe(0.01)
    assert throttle.concurrency == 4


# ---------------------------------------------------------------------------
# the server, end to end on a unix socket
# ---------------------------------------------------------------------------


class _RunningServer:
    """A VerifyServer running its asyncio loop in a daemon thread."""

    def __init__(self, config):
        self.server = VerifyServer(config)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.server.serve_forever()), daemon=True
        )

    def __enter__(self):
        self.thread.start()
        deadline = time.monotonic() + 30.0
        while not os.path.exists(self.server.config.socket_path):
            if time.monotonic() > deadline:
                raise RuntimeError("server never opened its socket")
            time.sleep(0.02)
        return self.server

    def __exit__(self, *exc_info):
        self.server.request_shutdown()
        self.thread.join(timeout=60.0)
        return False

    def join(self):
        self.thread.join(timeout=60.0)
        assert not self.thread.is_alive()


def _sock(tmp_path, name="serve.sock"):
    # AF_UNIX paths are length-limited; pytest tmp dirs stay well under it
    return str(tmp_path / name)


def test_server_cold_computed_then_warm_cache_hit(tmp_path):
    config = ServerConfig(
        socket_path=_sock(tmp_path),
        cache_dir=str(tmp_path / "cache"),
        journal_path=str(tmp_path / "journal.jsonl"),
        default_deadline_s=120.0,
    )
    with _RunningServer(config) as server:
        with ServeClient(socket_path=config.socket_path) as client:
            assert client.hello["protocol"] == PROTOCOL
            cold = client.verify(design="daio", representation="word", bound=70)
            assert cold["status"] == Status.UNSAFE
            assert cold["source"] == "computed"
            assert cold["counterexample_steps"] >= 1
            warm = client.verify(design="daio", representation="word", bound=70)
            assert warm["status"] == Status.UNSAFE
            assert warm["source"] == "cache"
            assert warm["validated"] is True
            stats = client.stats()
            assert stats["counters"]["accepted"] == 2
            assert stats["counters"]["computations"] == 2  # one hit the cache
            client.drain()
    # drain compacted the journal: nothing open, nothing silently lost
    report = RequestJournal(config.journal_path).replay()
    assert report.open_requests == {}
    assert server.counters["answered"] == 2
    assert not os.path.exists(config.socket_path)


def test_server_coalesces_identical_concurrent_queries(tmp_path):
    config = ServerConfig(
        socket_path=_sock(tmp_path),
        cache_dir=str(tmp_path / "cache"),
        max_workers=2,
        default_deadline_s=120.0,
    )
    clients = 4
    barrier = threading.Barrier(clients)
    replies = [None] * clients

    def one(index):
        with ServeClient(socket_path=config.socket_path) as client:
            barrier.wait()
            replies[index] = client.verify(
                design="mac16", representation="bit", bound=96
            )

    with _RunningServer(config) as server:
        threads = [threading.Thread(target=one, args=(i,)) for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert all(r is not None for r in replies)
        assert all(r["status"] == Status.SAFE for r in replies)
        server.request_shutdown()
    # identical in-flight queries shared computations: fewer runs than clients
    assert server.counters["computations"] < clients
    assert server.counters["coalesced"] >= 1
    assert (
        server.counters["computations"] + server.counters["coalesced"] == clients
    )


def test_server_disconnect_cancels_and_accounting_balances(tmp_path):
    config = ServerConfig(
        socket_path=_sock(tmp_path),
        max_workers=1,
        default_deadline_s=120.0,
    )
    with _RunningServer(config) as server:
        abandoner = ServeClient(socket_path=config.socket_path)
        abandoner.submit(
            {"design": "mac16", "representation": "bit", "bound": 96}
        )
        abandoner.close()  # walk away without reading the result
        with ServeClient(socket_path=config.socket_path) as client:
            reply = client.verify(design="proc3", representation="word")
            assert reply["status"] == Status.SAFE
            client.drain()
    counters = server.counters
    assert counters["cancelled"] == 1
    # every accept resolved: answered + cancelled covers all of them
    assert counters["accepted"] == counters["answered"] + counters["cancelled"]


def test_server_recovery_nacks_journaled_orphans(tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    # a previous incarnation accepted two requests and died before answering
    dead = RequestJournal(journal_path)
    dead.accept("orphan-1", {"design": "daio", "bound": 64})
    dead.accept("orphan-2", {"design": "rcu"})
    dead.finish("orphan-2", journal_mod.ANSWERED, status="safe")
    dead.close()

    config = ServerConfig(
        socket_path=_sock(tmp_path),
        journal_path=journal_path,
        recover="nack",
    )
    with _RunningServer(config) as server:
        with ServeClient(socket_path=config.socket_path) as client:
            stats = client.stats()
            assert stats["counters"]["recovered_nacked"] == 1
            assert stats["recovery"]["open"] == ["orphan-1"]
            client.drain()
    report = RequestJournal(journal_path).replay()
    assert report.open_requests == {}
    assert server.counters["recovered_nacked"] == 1


def test_server_rejects_unknown_design_without_dying(tmp_path):
    config = ServerConfig(socket_path=_sock(tmp_path))
    with _RunningServer(config) as server:
        with ServeClient(socket_path=config.socket_path) as client:
            with pytest.raises(ServeError) as excinfo:
                client.verify(design="no-such-design")
            assert "bad request" in str(excinfo.value)
            # the connection (and server) survive the bad request
            assert client.ping()["op"] == "pong"
            client.drain()
    assert server.counters["bad_requests"] == 1


# ---------------------------------------------------------------------------
# the certificate store under concurrent multi-process mutation
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def proc3_entry_json():
    """One real validated certificate, serialized, to clone under many keys."""
    system = load_system("proc3")
    result = make_engine("pdr", system).verify(timeout=90)
    assert result.status == Status.SAFE and result.certificate is not None
    entry = CacheEntry(
        key="seed",
        status=result.status,
        property_name=result.property_name,
        engine="pdr",
        representation="word",
        certificate=result.certificate,
        design="proc3",
    )
    return json.dumps(entry.to_json())


def _clone_entry(document_text, key):
    entry = CacheEntry.from_json(json.loads(document_text))
    entry.key = key
    return entry


def _hammer_store(root, document_text, prefix, rounds):
    """Child-process body: interleaved saves, loads, and quarantines."""
    store = CertificateStore(root, max_entries=16)
    for index in range(rounds):
        key = f"{prefix}{index:03d}"
        store.save(_clone_entry(document_text, key))
        store.load(key)  # touches the LRU clock; may race an eviction
        if index % 5 == 4:
            store.quarantine(f"{prefix}{index - 2:03d}", reason="hammer")
    os._exit(0)


def test_store_survives_concurrent_multiprocess_mutation(tmp_path, proc3_entry_json):
    root = str(tmp_path / "store")
    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(
            target=_hammer_store, args=(root, proc3_entry_json, prefix, 24)
        )
        for prefix in ("aa", "bb")
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120.0)
        assert worker.exitcode == 0

    store = CertificateStore(root, max_entries=16)
    # the cap held under the inter-process lock: the last save enforced it
    assert len(store) <= 16
    # every surviving entry decodes and answers for its own key
    for key in store.keys():
        entry, reason = store.load_strict(key)
        assert reason == "ok" and entry.key == key
    # atomic writes leaked no temp files
    strays = [
        name
        for _dir, _subdirs, names in os.walk(root)
        for name in names
        if name.endswith(".tmp")
    ]
    assert strays == []


def test_store_lock_is_reentrant_within_a_thread(tmp_path):
    lock = StoreLock(str(tmp_path))
    with lock:
        with lock:  # save -> evict nests exactly like this
            pass
    # fully released: a fresh acquisition from another thread succeeds fast
    acquired = threading.Event()

    def other():
        with StoreLock(str(tmp_path)):
            acquired.set()

    thread = threading.Thread(target=other)
    thread.start()
    thread.join(timeout=10.0)
    assert acquired.is_set()


def test_lru_eviction_respects_recency_under_cap(tmp_path, proc3_entry_json):
    store = CertificateStore(str(tmp_path / "store"), max_entries=3)
    for index in range(3):
        store.save(_clone_entry(proc3_entry_json, f"k{index}"))
        time.sleep(0.02)  # distinct mtimes: the LRU clock is mtime-based
    store.load("k0")  # touch the oldest — now k1 is the eviction victim
    time.sleep(0.02)
    store.save(_clone_entry(proc3_entry_json, "k3"))
    assert len(store) == 3
    assert "k0" in store and "k3" in store and "k1" not in store
