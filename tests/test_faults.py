"""Fault injection, supervised retries, deadlines, and the self-healing cache."""

import json
import multiprocessing
import os
import time

import pytest

from repro.benchmarks import get_benchmark
from repro.cache import QUARANTINE_DIR, ResultCache
from repro.engines import Status, VerificationTask, make_engine
from repro.engines.batch import BatchItem, BatchRunner
from repro.engines.portfolio import PortfolioConfig, PortfolioRunner, learn_priors
from repro.engines.supervision import RetryPolicy, WorkerSupervisor
from repro.faults import (
    CERT_FORGE,
    HANG,
    HANG_HARD,
    SPAWN_FAIL,
    WORKER_KILL,
    FaultPlan,
    plan_installed,
)
from repro.faults import injection
from repro.jsonio import write_json_atomic, write_text_atomic
from repro.sat.solver import Solver


# ---------------------------------------------------------------------------
# the fault plan: deterministic, seeded, attempt-gated
# ---------------------------------------------------------------------------


def test_fault_plan_draws_are_deterministic():
    keys = [f"design{i}:bmc:p" for i in range(200)]
    a = FaultPlan(seed=7, rates={"crash": 0.3})
    b = FaultPlan(seed=7, rates={"crash": 0.3})
    assert [a.decide("crash", k) for k in keys] == [b.decide("crash", k) for k in keys]
    fired = sum(1 for k in keys if FaultPlan(seed=7, rates={"crash": 0.3}).decide("crash", k))
    assert 20 <= fired <= 120  # ~30% of 200, loosely
    other = [FaultPlan(seed=8, rates={"crash": 0.3}).decide("crash", k) for k in keys]
    assert other != [a.decide("crash", k) for k in keys]


def test_fault_plan_rate_edges_and_attempt_gate():
    plan = FaultPlan(seed=0, rates={"crash": 1.0})
    assert plan.decide("crash", "x", attempt=0)
    # first_attempt_only (the default): retries run clean
    assert not plan.decide("crash", "x", attempt=1)
    always = FaultPlan(seed=0, rates={"crash": 1.0}, first_attempt_only=False)
    assert always.decide("crash", "x", attempt=3)
    assert not FaultPlan(seed=0, rates={}).decide("crash", "x")
    assert plan.fired  # fired draws are logged for reporting


def test_injection_points_are_noops_without_a_plan():
    assert injection.current() is None
    assert not injection.fail_spawn("spawn:0:0")
    assert injection.tamper_saved_entry("/nonexistent", "k", "{}") is None
    with plan_installed(FaultPlan(seed=1, rates={})):
        assert injection.current() is not None
    assert injection.current() is None
    assert Solver.fault_hook is None


# ---------------------------------------------------------------------------
# cooperative deadline: a wedged SAT solve is interrupted in-process
# ---------------------------------------------------------------------------


def test_hang_inside_sat_solve_is_interrupted_without_killing_the_process():
    system = get_benchmark("buffalloc").load()
    pid = os.getpid()
    start = time.monotonic()
    with plan_installed(FaultPlan(seed=0, rates={HANG: 1.0})):
        result = make_engine("k-induction", system, max_k=16).verify(timeout=1.0)
    wall = time.monotonic() - start
    assert os.getpid() == pid
    assert result.status not in Status.DEFINITIVE
    assert wall < 5.0  # the wedge released at the armed deadline
    assert Solver.fault_hook is None  # on_engine_finish cleaned up


# ---------------------------------------------------------------------------
# the supervisor itself (no engines: fast unit-level coverage)
# ---------------------------------------------------------------------------


def _ok_worker(payload):
    return payload * 2


def _always_crash(payload):
    raise RuntimeError("boom")


def _reject_me(payload):
    return "inconclusive"


def _make_supervisor(**retry_kwargs):
    policy = RetryPolicy(**retry_kwargs) if retry_kwargs else RetryPolicy()
    return WorkerSupervisor(multiprocessing.get_context("fork"), retry=policy)


def test_run_map_success_and_crash_taxonomy():
    supervisor = _make_supervisor(max_attempts=2, backoff_s=0.01)
    outcomes = supervisor.run_map([3, 4], _ok_worker, jobs=2, timeout=30)
    assert [o.state for o in outcomes] == ["done", "done"]
    assert [o.value for o in outcomes] == [6, 8]

    outcomes = supervisor.run_map([1], _always_crash, jobs=1, timeout=30)
    assert outcomes[0].state == "crashed"
    assert len(outcomes[0].attempts) == 2  # retried once, then gave up
    assert "boom" in outcomes[0].reason


def test_run_map_accept_rejects_and_keeps_fallback_value():
    supervisor = _make_supervisor(max_attempts=2, backoff_s=0.01)
    outcomes = supervisor.run_map(
        ["unit"],
        _reject_me,
        jobs=1,
        timeout=30,
        accept=lambda payload, value: f"not definitive: {value}",
    )
    assert outcomes[0].state == "timed-out"
    assert outcomes[0].value == "inconclusive"  # rejected answer kept as fallback
    assert len(outcomes[0].attempts) == 2
    assert all(a["state"] == "timed-out" for a in outcomes[0].attempts)


def test_spawn_failures_degrade_to_in_process_execution():
    supervisor = _make_supervisor()
    with plan_installed(FaultPlan(seed=0, rates={SPAWN_FAIL: 1.0})):
        outcomes = supervisor.run_map([5], _ok_worker, jobs=1, timeout=30)
    assert not supervisor.pool_healthy
    assert outcomes[0].state == "done"
    assert outcomes[0].value == 10
    assert outcomes[0].degraded
    assert outcomes[0].attempts[-1]["state"] == "degraded"


# ---------------------------------------------------------------------------
# the batch runner under chaos
# ---------------------------------------------------------------------------


def test_batch_worker_kill_is_retried_then_succeeds():
    with plan_installed(FaultPlan(seed=0, rates={WORKER_KILL: 1.0})):
        runner = BatchRunner(timeout=60, bound=80)
        report = runner.run([BatchItem.benchmark("daio")])
    row = report.items[0]
    assert row.status == Status.UNSAFE
    assert row.supervision["retried"]
    assert row.supervision["attempts"][0]["state"] == "crashed"
    assert row.supervision["state"] == "done"
    assert report.retries >= 1
    assert not multiprocessing.active_children()


def test_batch_hard_wedge_is_killed_at_the_attempt_deadline_then_retried():
    with plan_installed(FaultPlan(seed=0, rates={HANG_HARD: 1.0})):
        runner = BatchRunner(timeout=60, bound=80, attempt_timeout=3.0)
        report = runner.run([BatchItem.benchmark("daio")])
    row = report.items[0]
    assert row.status == Status.UNSAFE
    states = [a["state"] for a in row.supervision["attempts"]]
    assert "timed-out" in states  # the wedged attempt was reaped externally
    assert row.supervision["state"] == "done"
    assert not multiprocessing.active_children()


def test_batch_spawn_failures_degrade_to_sequential_execution():
    with plan_installed(FaultPlan(seed=0, rates={SPAWN_FAIL: 1.0})):
        runner = BatchRunner(timeout=60, bound=80)
        report = runner.run([BatchItem.benchmark("daio")])
    row = report.items[0]
    assert row.status == Status.UNSAFE
    assert row.supervision["degraded"]
    assert report.degraded == 1


def test_batch_certify_rejects_forged_certificates_and_recovers():
    """Every first-attempt answer is forged; certification refuses them all
    and the supervised retry (which runs clean) still converges — a lying
    engine can surface as anything but a WRONG verdict."""
    with plan_installed(FaultPlan(seed=0, rates={CERT_FORGE: 1.0})):
        runner = BatchRunner(timeout=60, bound=80, certify=True, attempt_timeout=10.0)
        report = runner.run([BatchItem.benchmark("daio")])
    row = report.items[0]
    assert row.status == Status.UNSAFE  # retry converged on the truth
    assert row.correct is True
    assert row.supervision["retried"]


# ---------------------------------------------------------------------------
# the portfolio runner under chaos
# ---------------------------------------------------------------------------


def test_portfolio_worker_kill_is_retried_then_wins():
    with plan_installed(FaultPlan(seed=0, rates={WORKER_KILL: 1.0})):
        runner = PortfolioRunner(
            configs=[PortfolioConfig.of("bmc", max_bound=80)], timeout=60
        )
        result = runner.run(VerificationTask.benchmark("daio"))
    assert result.status == Status.UNSAFE
    assert result.winner_engine == "bmc"
    assert result.workers[0].attempts == 2
    assert result.detail["supervision"]["retries"] >= 1
    assert not multiprocessing.active_children()


def test_portfolio_spawn_failures_degrade_and_still_answer():
    with plan_installed(FaultPlan(seed=0, rates={SPAWN_FAIL: 1.0})):
        runner = PortfolioRunner(
            configs=[PortfolioConfig.of("bmc", max_bound=80)], timeout=60
        )
        result = runner.run(VerificationTask.benchmark("daio"))
    assert result.status == Status.UNSAFE
    assert result.workers[0].degraded
    assert result.detail["supervision"]["degraded"]


def test_portfolio_certify_refuses_forged_certificate_without_going_wrong():
    with plan_installed(FaultPlan(seed=0, rates={CERT_FORGE: 1.0})):
        runner = PortfolioRunner(
            configs=[PortfolioConfig.of("bmc", max_bound=80)],
            timeout=20,
            certify=True,
        )
        result = runner.run(VerificationTask.benchmark("daio"))
    # the forged claim was rejected: no winner, and crucially not WRONG
    assert result.status not in Status.DEFINITIVE
    assert result.status != Status.WRONG
    assert result.winner is None
    certification = result.detail["certification"]
    assert any(not row["certified"] for row in certification.values())


def test_portfolio_slow_start_losers_are_cancelled():
    with plan_installed(FaultPlan(seed=0, rates={"slow-start": 1.0}, slow_start_s=5.0)):
        runner = PortfolioRunner(
            configs=[
                PortfolioConfig.of("bmc", max_bound=80),
                PortfolioConfig.of("pdr"),
            ],
            timeout=60,
            max_workers=2,
        )
        result = runner.run(VerificationTask.benchmark("daio"))
    assert result.status == Status.UNSAFE
    loser_states = {
        o.state for o in result.workers if o.label != result.winner
    }
    assert loser_states <= {"cancelled", "skipped"}


# ---------------------------------------------------------------------------
# the self-healing cache
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def safe_result():
    """One real SAFE verdict with a validated certificate (shared, ~1s)."""
    system = get_benchmark("buffalloc").load()
    result = make_engine("k-induction", system, max_k=16).verify(timeout=60)
    assert result.status == Status.SAFE and result.certificate is not None
    return system, result


def _fill(cache, safe_result):
    system, result = safe_result
    outcome = cache.store(system, "conservation", "word", result, design="buffalloc")
    assert outcome.stored
    return outcome.key


def test_truncated_entry_is_quarantined_not_crashing(tmp_path, safe_result):
    cache = ResultCache(str(tmp_path), validation_timeout=30)
    key = _fill(cache, safe_result)
    path = cache.store_backend.path_for(key)
    with open(path, "r+", encoding="utf-8") as handle:
        payload = handle.read()
        handle.seek(0)
        handle.truncate()
        handle.write(payload[: len(payload) // 2])
    system, _ = safe_result
    lookup = cache.lookup(system, "conservation", "word")
    assert not lookup.hit and lookup.reason == "absent"
    assert cache.store_backend.quarantined == 1
    assert key in cache.store_backend.quarantine_keys()
    assert os.path.isdir(os.path.join(str(tmp_path), QUARANTINE_DIR))


def test_corrupted_entry_is_demoted_on_lookup(tmp_path, safe_result):
    cache = ResultCache(str(tmp_path), validation_timeout=30)
    key = _fill(cache, safe_result)
    path = cache.store_backend.path_for(key)
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    document["status"] = Status.UNSAFE  # flip the verdict, keep it decodable
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    system, _ = safe_result
    lookup = cache.lookup(system, "conservation", "word")
    assert not lookup.hit and lookup.demoted
    assert cache.store_backend.load_strict(key)[1] == "absent"  # pruned


def test_fsck_heals_a_tampered_store(tmp_path, safe_result):
    cache = ResultCache(str(tmp_path), validation_timeout=30)
    key = _fill(cache, safe_result)
    path = cache.store_backend.path_for(key)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"half a docu')
    first = cache.fsck()
    assert key in first["quarantined"]
    assert not first["clean"]
    second = cache.fsck()
    assert second["clean"] and second["checked"] == 0


def test_fsck_validates_entries_against_their_design(tmp_path, safe_result):
    cache = ResultCache(str(tmp_path), validation_timeout=30)
    _fill(cache, safe_result)
    report = cache.fsck()
    assert report["clean"] and report["ok"] == 1 and not report["unresolved"]


def test_lru_eviction_honours_entry_cap(tmp_path, safe_result):
    cache = ResultCache(str(tmp_path), max_entries=1, validation_timeout=30)
    system, result = safe_result
    cache.store(system, "conservation", "word", result, design="buffalloc")
    cache.store(system, "conservation", "bit", result, design="buffalloc")
    assert len(cache.store_backend) == 1
    assert cache.store_backend.evictions == 1


def test_cache_tamper_fault_fires_on_save(tmp_path, safe_result):
    with plan_installed(FaultPlan(seed=0, rates={"cache-truncate": 1.0})):
        cache = ResultCache(str(tmp_path), validation_timeout=30)
        key = _fill(cache, safe_result)
    entry, reason = cache.store_backend.load_strict(key)
    assert entry is None and reason == "undecodable"


# ---------------------------------------------------------------------------
# satellites: prior learning hardening and atomic writes
# ---------------------------------------------------------------------------


def test_learn_priors_skips_malformed_reports_with_a_warning(tmp_path):
    good = tmp_path / "BENCH_good.json"
    good.write_text(json.dumps({
        "portfolio": [{"singles": {"bmc": {"runtime_s": 1.0, "status": "safe"}}}]
    }))
    (tmp_path / "BENCH_torn.json").write_text('{"portfolio": [')
    (tmp_path / "BENCH_shape.json").write_text(json.dumps({"portfolio": ["garbage"]}))
    paths = [str(good), str(tmp_path / "BENCH_torn.json"), str(tmp_path / "BENCH_shape.json")]
    with pytest.warns(UserWarning, match="skipping"):
        priors = learn_priors(paths)
    assert priors["bmc"]["runs"] == 1  # the good report still contributes


def test_atomic_json_write_leaves_no_temp_files(tmp_path):
    out = tmp_path / "BENCH_x.json"
    write_json_atomic(str(out), {"a": 1})
    assert json.loads(out.read_text()) == {"a": 1}
    assert out.read_text().endswith("\n")
    write_text_atomic(str(out), "replaced")
    assert out.read_text() == "replaced"
    assert [p.name for p in tmp_path.iterdir()] == ["BENCH_x.json"]
