"""Persistent engine sessions vs the legacy fresh-solver path.

The converted engines (BMC, k-induction, kIkI, interpolation, IMPACT,
predicate abstraction) must produce identical verdicts with
``persistent_session`` on and off, across the whole benchmark suite; frame
retraction through :class:`repro.engines.encoding.FrameEncoder` activation
guards must actually detach a frame's constraints; session-produced SAFE
certificates must still discharge under the independent validator; and the
portfolio pre-warm must make workers inherit the parent's blasted templates.
"""

import pytest

from repro.benchmarks import benchmark_names, get_benchmark, load_system_cached
from repro.certs import validate_result
from repro.engines.bmc import BMCEngine
from repro.engines.encoding import FrameEncoder, template_library
from repro.engines.impact import ImpactEngine
from repro.engines.interpolation import InterpolationEngine
from repro.engines.kiki import KikiEngine
from repro.engines.kinduction import KInductionEngine
from repro.engines.portfolio import PortfolioConfig, PortfolioRunner, VerificationTask
from repro.engines.predabs import PredicateAbstractionEngine
from repro.exprs import bv_const, bv_eq, bv_ne
from repro.netlist import TransitionSystem
from repro.smt import BVResult


def _tiny_unsafe() -> TransitionSystem:
    ts = TransitionSystem("tiny_unsafe")
    c = ts.add_state_var("c", 3, init=0)
    ts.set_next("c", c + bv_const(1, 3))
    ts.add_property("p", bv_ne(c, bv_const(3, 3)))
    return ts


# ---------------------------------------------------------------------------
# frame retraction through the encoder
# ---------------------------------------------------------------------------


def test_retired_frame_no_longer_constrains():
    ts = TransitionSystem("tiny")
    c = ts.add_state_var("c", 3, init=0)
    ts.set_next("c", c + bv_const(1, 3))
    ts.add_property("p", bv_eq(c, c))
    encoder = FrameEncoder(ts)
    encoder.assert_init(0)
    activation = encoder.new_activation()
    encoder.assert_trans(0, guard=activation)
    query = encoder.solver.literal_for(
        bv_eq(encoder.var_at("c", 1), bv_const(5, 3))
    )
    # with the frame active, c@1 is forced to 1
    assert encoder.solver.check(assumptions=[activation, query]) == BVResult.UNSAT
    assert encoder.solver.check(assumptions=[activation, -query]) == BVResult.SAT
    encoder.retire(activation)
    # retired: c@1 is unconstrained again
    assert encoder.solver.check(assumptions=[query]) == BVResult.SAT


def test_retracted_frame_can_be_restamped():
    """The sliding-window pattern: retire a frame, stamp it again, same bits."""
    ts = TransitionSystem("tiny")
    c = ts.add_state_var("c", 3, init=0)
    ts.set_next("c", c + bv_const(1, 3))
    ts.add_property("p", bv_eq(c, c))
    encoder = FrameEncoder(ts)
    encoder.assert_init(0)
    first = encoder.new_activation()
    encoder.assert_trans(0, guard=first)
    encoder.retire(first)
    second = encoder.new_activation()
    encoder.assert_trans(0, guard=second)
    forced = encoder.solver.literal_for(
        bv_eq(encoder.var_at("c", 1), bv_const(1, 3))
    )
    assert encoder.solver.check(assumptions=[second, -forced]) == BVResult.UNSAT
    assert encoder.solver.check(assumptions=[second, forced]) == BVResult.SAT


def test_guarded_init_retraction():
    ts = _tiny_unsafe()
    encoder = FrameEncoder(ts)
    activation = encoder.new_activation()
    encoder.assert_init(0, guard=activation)
    nonzero = encoder.solver.literal_for(
        bv_ne(encoder.var_at("c", 0), bv_const(0, 3))
    )
    assert encoder.solver.check(assumptions=[activation, nonzero]) == BVResult.UNSAT
    encoder.retire(activation)
    assert encoder.solver.check(assumptions=[nonzero]) == BVResult.SAT


# ---------------------------------------------------------------------------
# session-vs-legacy verdict sweep
# ---------------------------------------------------------------------------

_SWEEP_FACTORIES = {
    "bmc": lambda system, session: BMCEngine(
        system, max_bound=8, persistent_session=session
    ),
    "k-induction": lambda system, session: KInductionEngine(
        system, max_k=8, persistent_session=session
    ),
    "kiki": lambda system, session: KikiEngine(
        system, max_k=8, persistent_session=session
    ),
    "interpolation": lambda system, session: InterpolationEngine(
        system, max_depth=8, persistent_session=session
    ),
    "predabs": lambda system, session: PredicateAbstractionEngine(
        system, persistent_session=session
    ),
}


@pytest.mark.parametrize("engine_name", sorted(_SWEEP_FACTORIES))
@pytest.mark.parametrize("design", benchmark_names())
def test_session_vs_legacy_verdicts(engine_name, design):
    factory = _SWEEP_FACTORIES[engine_name]
    outcomes = {}
    for session in (True, False):
        system = get_benchmark(design).load()
        result = factory(system, session).verify(timeout=60)
        outcomes[session] = result.status
    assert outcomes[True] == outcomes[False]


@pytest.mark.parametrize("design", ["huffman_dec", "fifo", "arbiter", "barrel16"])
def test_impact_session_vs_legacy(design):
    outcomes = {}
    for session in (True, False):
        system = get_benchmark(design).load()
        result = ImpactEngine(system, persistent_session=session).verify(timeout=60)
        outcomes[session] = result.status
    assert outcomes[True] == outcomes[False]
    assert outcomes[True] == get_benchmark(design).expected


def test_session_counterexample_matches_legacy():
    for engine_class in (BMCEngine, KInductionEngine):
        lengths = {}
        for session in (True, False):
            result = engine_class(
                _tiny_unsafe(), persistent_session=session
            ).verify(timeout=60)
            assert result.status == "unsafe"
            lengths[session] = result.counterexample.length
        assert lengths[True] == lengths[False] == 4  # cycles 0..3


def test_session_results_report_solver_stats():
    result = BMCEngine(_tiny_unsafe()).verify(timeout=60)
    stats = result.detail.get("solver_stats")
    assert stats is not None
    assert stats["propagations"] > 0
    for key in ("conflicts", "decisions", "restarts", "reduce_db", "minimized_literals"):
        assert key in stats


# ---------------------------------------------------------------------------
# session-produced certificates stay independently checkable
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "factory",
    [
        lambda system: InterpolationEngine(system),
        lambda system: KInductionEngine(system, max_k=8),
        lambda system: KikiEngine(system, max_k=8),
    ],
)
def test_session_safe_certificates_validate(factory):
    system = get_benchmark("huffman_dec").load()
    result = factory(system).verify(timeout=60)
    assert result.status == "safe"
    validation = validate_result(system, result, timeout=60)
    assert validation.ok, validation.reason


def test_interpolation_session_unsafe_witness_validates():
    system = _tiny_unsafe()
    result = InterpolationEngine(system).verify(timeout=60)
    assert result.status == "unsafe"
    validation = validate_result(system, result, timeout=60)
    assert validation.ok, validation.reason


# ---------------------------------------------------------------------------
# portfolio template pre-warm
# ---------------------------------------------------------------------------


def test_cached_loader_returns_shared_instance():
    first = load_system_cached("arbiter")
    second = load_system_cached("arbiter")
    assert first is second
    # the portfolio task loader resolves to the same shared instance
    assert VerificationTask.benchmark("arbiter").load() is first


def test_prewarm_builds_templates_in_parent():
    runner = PortfolioRunner(
        configs=[
            PortfolioConfig.of("bmc", representation="word", max_bound=8),
            PortfolioConfig.of("k-induction", representation="bit", max_k=8),
        ],
        timeout=30,
    )
    task = VerificationTask.benchmark("huffman_dec")
    runner._prewarm(task)
    system = load_system_cached("huffman_dec")
    # both representations were blasted on the shared instance: further
    # lookups return the already-built libraries (no rebuild)
    word = template_library(system, "word")
    bit = template_library(system, "bit")
    assert template_library(system, "word") is word
    assert template_library(system, "bit") is bit
    # property templates were warmed too
    prop = system.properties[0].name
    assert word.property_template(prop) is word.property_template(prop)


def test_portfolio_with_prewarm_still_correct():
    runner = PortfolioRunner(
        configs=[
            PortfolioConfig.of("bmc", max_bound=80),
            PortfolioConfig.of("k-induction", max_k=16),
        ],
        timeout=120,
        expected="unsafe",
    )
    result = runner.run(VerificationTask.benchmark("daio"))
    assert result.status == "unsafe"
