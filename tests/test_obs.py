"""Telemetry: span nesting, no-op overhead, cross-process stitching, sinks."""

import argparse
import json
import multiprocessing
import time

import pytest

from repro.benchmarks import get_benchmark
from repro.engines import make_engine
from repro.engines.batch import BatchItem, BatchRunner
from repro.engines.supervision import RetryPolicy, WorkerSupervisor
from repro.faults import injection
from repro.obs import log as obslog
from repro.obs import telemetry
from repro.obs.export import (
    Trace,
    chrome_trace,
    lint_trace,
    load_trace,
    summarize_trace,
    write_chrome_trace,
    write_trace,
)
from repro.tools import trace_cli

# ---------------------------------------------------------------------------
# the recorder: nesting, disabled no-op, metrics
# ---------------------------------------------------------------------------

def test_spans_nest_and_record_outcomes():
    with telemetry.recording() as recorder:
        with telemetry.span("outer", k=1) as outer:
            with telemetry.span("inner") as inner:
                inner.set_outcome("safe")
            telemetry.counter("hits", 2)
            telemetry.gauge("depth", 7)
    payload = recorder.export()
    spans = {s["name"]: s for s in payload["spans"]}
    assert spans["inner"]["parent"] == spans["outer"]["id"]
    assert spans["outer"]["parent"] is None
    assert spans["inner"]["outcome"] == "safe"
    assert spans["outer"]["attrs"] == {"k": 1}
    assert payload["counters"] == {"hits": 2}
    assert payload["gauges"] == {"depth": 7}
    assert spans["outer"]["wall_s"] >= spans["inner"]["wall_s"] >= 0

def test_disabled_mode_is_a_noop_and_cheap():
    assert telemetry.get_recorder() is None
    span = telemetry.span("anything", attr=1)
    assert span is telemetry.NOOP_SPAN
    with span as inner:
        inner.annotate(x=1).set_outcome("ok")
    telemetry.counter("nope")
    telemetry.gauge("nope", 1)
    assert telemetry.snapshot() is None
    # the disabled API must stay in no-op territory: well under a
    # microsecond per call even on a loaded CI box
    n = 50_000
    t0 = time.perf_counter()
    for _ in range(n):
        with telemetry.span("noop"):
            pass
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 10e-6

def test_recording_is_scoped_and_reentrant_safe():
    assert telemetry.get_recorder() is None
    with telemetry.recording() as recorder:
        assert telemetry.get_recorder() is recorder
        with telemetry.span("x"):
            pass
    assert telemetry.get_recorder() is None
    assert len(recorder) == 1

def test_ring_buffer_drops_oldest_and_counts_drops():
    with telemetry.recording(capacity=4) as recorder:
        for i in range(10):
            with telemetry.span(f"s{i}"):
                pass
    payload = recorder.export()
    assert len(payload["spans"]) == 4
    assert payload["dropped_spans"] == 6
    assert [s["name"] for s in payload["spans"]] == ["s6", "s7", "s8", "s9"]

def test_explicit_parent_spans_for_overlapping_work():
    with telemetry.recording() as recorder:
        root = recorder.start_span("root")
        a = recorder.start_span("a", parent=root)
        b = recorder.start_span("b", parent=root)  # overlaps a
        a.finish(outcome="done")
        b.finish(outcome="done")
        root.finish()
    spans = {s["name"]: s for s in recorder.export()["spans"]}
    assert spans["a"]["parent"] == spans["root"]["id"]
    assert spans["b"]["parent"] == spans["root"]["id"]

# ---------------------------------------------------------------------------
# cross-process stitching through the supervisor
# ---------------------------------------------------------------------------

def _traced_worker(payload):
    with telemetry.span("worker.body", payload=payload):
        telemetry.counter("worker.calls")
    return payload + 1

def _hang_first_attempt(payload):
    if injection._ATTEMPT == 0:
        time.sleep(60)
    with telemetry.span("worker.body", payload=payload):
        pass
    return payload + 1

def _supervisor(**retry_kwargs):
    policy = RetryPolicy(**retry_kwargs) if retry_kwargs else RetryPolicy()
    return WorkerSupervisor(
        multiprocessing.get_context("fork"), retry=policy, grace=0.1
    )

def test_worker_spans_stitch_under_the_spawning_span():
    with telemetry.recording() as recorder:
        with telemetry.span("driver"):
            outcomes = _supervisor().run_map(
                [1, 2], _traced_worker, jobs=2, timeout=30
            )
    assert [o.value for o in outcomes] == [2, 3]
    payload = recorder.export()
    spans = payload["spans"]
    by_id = {s["id"]: s for s in spans}
    bodies = [s for s in spans if s["name"] == "worker.body"]
    assert len(bodies) == 2
    for body in bodies:
        # worker.body < worker.attempt < supervisor.attempt < unit < driver
        chain = []
        cursor = body
        while cursor["parent"] is not None:
            cursor = by_id[cursor["parent"]]
            chain.append(cursor["name"])
        assert chain == [
            "worker.attempt", "supervisor.attempt", "supervisor.unit", "driver",
        ]
    # child pids differ from the parent's, and counters merged up
    parent_pid = next(s["pid"] for s in spans if s["name"] == "driver")
    assert {b["pid"] for b in bodies} != {parent_pid}
    assert payload["counters"]["worker.calls"] == 2
    assert payload["counters"]["supervisor.spawns"] == 2

def test_kill_retry_trace_has_no_orphans(tmp_path):
    with telemetry.recording() as recorder:
        with telemetry.span("driver"):
            outcomes = _supervisor(max_attempts=2, backoff_s=0.01).run_map(
                [5],
                _hang_first_attempt,
                jobs=1,
                timeout=30,
                attempt_timeout=0.5,
                kill_grace=0.1,
            )
    assert outcomes[0].state == "done"
    assert outcomes[0].value == 6
    assert [a["state"] for a in outcomes[0].attempts] == ["timed-out", "done"]

    path = str(tmp_path / "trace.jsonl")
    write_trace(recorder, path, meta={"tool": "test"})
    trace = load_trace(path)
    assert lint_trace(trace) == []  # killed attempt leaves zero orphans
    attempts = [s for s in trace.spans if s["name"] == "supervisor.attempt"]
    assert sorted(s["outcome"] for s in attempts) == ["done", "timed-out"]
    # the killed attempt shipped nothing; only the survivor has a subtree
    attempt_ids = {s["id"]: s["outcome"] for s in attempts}
    children = [s for s in trace.spans if s.get("parent") in attempt_ids]
    assert {attempt_ids[s["parent"]] for s in children} == {"done"}
    assert trace.counters["supervisor.attempts.timed-out"] == 1
    assert trace.counters["supervisor.attempts.done"] == 1
    assert trace.counters["supervisor.retries"] == 1

def test_batch_sweep_trace_reconstructs_the_decision_path(tmp_path):
    with telemetry.recording() as recorder:
        report = BatchRunner(timeout=60, bound=80, jobs=2).run(
            [BatchItem.benchmark("daio"), BatchItem.benchmark("tlc")]
        )
    assert report.all_definitive
    path = str(tmp_path / "batch.jsonl")
    write_trace(recorder, path)
    trace = load_trace(path)
    assert lint_trace(trace) == []
    names = {s["name"] for s in trace.spans}
    # every layer of the decision path shows up in one stitched trace
    assert {"batch.run", "batch.unit", "ladder.attempt", "engine.verify",
            "solver.check", "supervisor.attempt"} <= names
    assert len({s["pid"] for s in trace.spans}) >= 2
    summary = summarize_trace(trace)
    assert summary["roots"] == 1
    assert summary["processes"] >= 2
    assert summary["phases"]["batch.unit"]["count"] == 2

# ---------------------------------------------------------------------------
# sinks: JSONL, lint, Chrome export, CLI
# ---------------------------------------------------------------------------

def _sample_trace(tmp_path):
    with telemetry.recording() as recorder:
        with telemetry.span("root", design="daio"):
            with telemetry.span("leaf") as leaf:
                leaf.set_outcome("unsafe")
        telemetry.counter("cache.hit")
    path = str(tmp_path / "t.jsonl")
    write_trace(recorder, path, meta={"tool": "test"})
    return path

def test_jsonl_roundtrip_and_lint(tmp_path):
    path = _sample_trace(tmp_path)
    lines = [json.loads(l) for l in open(path) if l.strip()]
    assert lines[0]["type"] == "header"
    assert lines[0]["format"] == "repro-trace-v1"
    assert lines[-1]["type"] == "metrics"
    trace = load_trace(path)
    assert lint_trace(trace) == []
    assert trace.counters == {"cache.hit": 1}

def test_lint_flags_orphans_duplicates_and_bad_schema():
    trace = Trace(
        header={"format": "repro-trace-v1"},
        spans=[
            {"id": 1, "parent": None, "name": "a", "pid": 1, "start": 0.0,
             "wall_s": 1.0, "cpu_s": 0.5, "outcome": "ok", "attrs": {}},
            {"id": 1, "parent": 99, "name": "b", "pid": 1, "start": 0.0,
             "wall_s": -1.0, "cpu_s": 0.0, "outcome": "ok", "attrs": {}},
            {"id": 2, "parent": None, "name": "c", "pid": 1, "start": 0.0,
             "wall_s": 0.0, "outcome": "ok", "attrs": {}},
        ],
        counters={"bad": "NaNish"},
    )
    problems = lint_trace(trace)
    assert any("duplicate span id" in p for p in problems)
    assert any("parent 99" in p for p in problems)
    assert any("negative wall_s" in p for p in problems)
    assert any("missing field 'cpu_s'" in p for p in problems)
    assert any("non-numeric" in p for p in problems)

def test_chrome_export_is_wellformed(tmp_path):
    path = _sample_trace(tmp_path)
    trace = load_trace(path)
    events = chrome_trace(trace)
    assert len(events) == len(trace.spans)
    for event in events:
        assert event["ph"] == "X"
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert "outcome" in event["args"]
    root = next(e for e in events if e["name"] == "root")
    leaf = next(e for e in events if e["name"] == "leaf")
    assert root["ts"] <= leaf["ts"]  # relative timestamps keep ordering
    assert root["args"]["design"] == "daio"
    out = str(tmp_path / "t.chrome.json")
    write_chrome_trace(trace, out)
    document = json.load(open(out))
    assert {e["name"] for e in document["traceEvents"]} == {"root", "leaf"}

def test_trace_cli_lint_summarize_tree(tmp_path, capsys):
    path = _sample_trace(tmp_path)
    assert trace_cli.main(["lint", path, "--expect-clean"]) == 0
    assert "clean" in capsys.readouterr().err  # progress lines live on stderr
    assert trace_cli.main(["summarize", path]) == 0
    out = capsys.readouterr().out
    assert "root" in out and "leaf" in out
    assert trace_cli.main(["tree", path]) == 0
    out = capsys.readouterr().out
    assert "  leaf" in out  # indented under root
    assert trace_cli.main(
        ["flame", path, "--out", str(tmp_path / "f.json")]
    ) == 0
    json.load(open(tmp_path / "f.json"))

def test_trace_cli_lint_gates_on_problems(tmp_path, capsys):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w") as handle:
        handle.write(json.dumps({"type": "header", "format": "repro-trace-v1"}) + "\n")
        handle.write(json.dumps({
            "type": "span", "id": 1, "parent": 42, "name": "x", "pid": 1,
            "start": 0.0, "wall_s": 0.0, "cpu_s": 0.0, "outcome": "ok",
            "attrs": {},
        }) + "\n")
        handle.write(json.dumps({"type": "metrics", "counters": {}, "gauges": {}}) + "\n")
    assert trace_cli.main(["lint", path, "--expect-clean"]) == 1
    assert "orphan" in capsys.readouterr().out

# ---------------------------------------------------------------------------
# satellites: verbosity layer, CPU time, engine metrics snapshot
# ---------------------------------------------------------------------------

def _parse_verbosity(argv):
    parser = argparse.ArgumentParser()
    obslog.add_verbosity_flags(parser)
    return parser.parse_args(argv)

def test_verbosity_flags_map_to_levels():
    for argv, expected in [
        ([], obslog.NORMAL),
        (["-v"], obslog.VERBOSE),
        (["-vv"], obslog.DEBUG),
        (["-q"], obslog.QUIET),
        (["-q", "-v"], obslog.NORMAL),
    ]:
        obslog.configure_from_args(_parse_verbosity(argv))
        try:
            assert obslog.get_level() == expected, argv
        finally:
            obslog.set_level(obslog.NORMAL)

def test_leveled_events_go_to_stderr_and_respect_level(capsys):
    with obslog.temporary_level(obslog.NORMAL):
        obslog.info("shown")
        obslog.verbose("hidden")
        obslog.error("always")
    captured = capsys.readouterr()
    assert captured.out == ""  # result tables own stdout; logs never do
    assert "shown" in captured.err
    assert "hidden" not in captured.err
    assert "always" in captured.err
    with obslog.temporary_level(obslog.QUIET):
        obslog.info("muted")
        obslog.error("still shown")
    captured = capsys.readouterr()
    assert "muted" not in captured.err
    assert "still shown" in captured.err

def test_verification_result_reports_cpu_time_and_telemetry():
    system = get_benchmark("daio").load()
    with telemetry.recording():
        result = make_engine("bmc", system, max_bound=80).verify()
    assert result.status == "unsafe"
    assert result.cpu_time > 0
    assert result.telemetry and "counters" in result.telemetry
    assert result.telemetry["counters"].get("solver.checks", 0) > 0
    # off the record, cpu_time still fills in but no telemetry attaches
    result = make_engine("bmc", system, max_bound=80).verify()
    assert result.cpu_time > 0
    assert result.telemetry is None


def test_cache_counters_persist_across_instances(tmp_path, capsys):
    from repro.benchmarks import load_system
    from repro.cache import ResultCache
    from repro.tools import cache_cli

    root = str(tmp_path / "cache")
    system = load_system("daio")
    prop = system.properties[0].name
    result = make_engine("bmc", system, max_bound=80).verify(timeout=60)
    assert result.status == "unsafe"

    cache = ResultCache(root)
    assert not cache.lookup(system, prop).hit
    assert cache.store(system, prop, "word", result, design="daio").stored
    assert cache.lookup(system, prop).hit

    # a fresh process-equivalent (new instance) sees the lifetime totals
    lifetime = ResultCache(root).persistent.as_dict()
    assert lifetime["hits"] == 1
    assert lifetime["misses"] == 1
    assert lifetime["stores"] == 1
    assert lifetime["revalidations_ok"] == 1
    assert lifetime["revalidations_failed"] == 0

    # and repro-cache stats reports them, in both output modes
    assert cache_cli.main(["--cache-dir", root, "stats"]) == 0
    human = capsys.readouterr().out
    assert "1 hit(s) / 1 miss(es) over 2 lookup(s)" in human
    assert cache_cli.main(["--cache-dir", root, "stats", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["lifetime"]["hits"] == 1
