"""Expression IR tests: evaluation, simplification round-trips, traversals."""

import itertools

import pytest

from repro.exprs import (
    FALSE,
    TRUE,
    bv_add,
    bv_and,
    bv_ashr,
    bv_concat,
    bv_const,
    bv_eq,
    bv_extract,
    bv_ite,
    bv_lshr,
    bv_mul,
    bv_ne,
    bv_not,
    bv_or,
    bv_reduce_or,
    bv_shl,
    bv_sign_extend,
    bv_slt,
    bv_sub,
    bv_udiv,
    bv_ult,
    bv_urem,
    bv_var,
    bv_xor,
    bv_zero_extend,
    evaluate,
    simplify,
)
from repro.exprs.substitute import collect_vars, rename, substitute


def _sample_exprs():
    a = bv_var("a", 4)
    b = bv_var("b", 4)
    c = bv_var("c", 1)
    return [
        bv_add(a, b),
        bv_sub(a, b),
        bv_mul(a, b),
        bv_udiv(a, b),
        bv_urem(a, b),
        bv_and(a, bv_not(b)),
        bv_or(bv_xor(a, b), a),
        bv_shl(a, b),
        bv_lshr(a, b),
        bv_ashr(a, b),
        bv_eq(a, b),
        bv_ne(a, b),
        bv_ult(a, b),
        bv_slt(a, b),
        bv_ite(c, a, b),
        bv_concat(a, b),
        bv_extract(bv_concat(a, b), 5, 2),
        bv_zero_extend(a, 2),
        bv_sign_extend(a, 2),
        bv_reduce_or(a),
        bv_add(bv_ite(bv_eq(a, bv_const(3, 4)), a, b), bv_const(1, 4)),
    ]


def _environments():
    values = [0, 1, 3, 7, 8, 15]
    for va, vb in itertools.product(values, repeat=2):
        for vc in (0, 1):
            yield {"a": va, "b": vb, "c": vc}


def test_simplify_preserves_semantics():
    for expr in _sample_exprs():
        simplified = simplify(expr)
        assert simplified.width == expr.width
        for env in _environments():
            assert evaluate(simplified, env) == evaluate(expr, env), repr(expr)


def test_constant_folding_to_const():
    expr = bv_add(bv_const(3, 4), bv_mul(bv_const(2, 4), bv_const(5, 4)))
    folded = simplify(expr)
    assert folded.is_const()
    assert evaluate(folded, {}) == (3 + 2 * 5) % 16


def test_substitute_round_trip():
    a = bv_var("a", 4)
    b = bv_var("b", 4)
    expr = bv_add(bv_and(a, b), a)
    swapped = substitute(expr, {"a": b, "b": a})
    for env in _environments():
        mirrored = dict(env, a=env["b"], b=env["a"])
        assert evaluate(swapped, env) == evaluate(expr, mirrored)


def test_substitute_width_mismatch_rejected():
    a = bv_var("a", 4)
    with pytest.raises(ValueError):
        substitute(bv_not(a), {"a": bv_var("wide", 8)})


def test_rename_round_trip():
    a = bv_var("a", 4)
    b = bv_var("b", 4)
    expr = bv_xor(bv_add(a, b), a)
    stamped = rename(expr, lambda name: f"{name}@3")
    names = {var.name for var in collect_vars(stamped)}
    assert names == {"a@3", "b@3"}
    unstamped = rename(stamped, lambda name: name.split("@")[0])
    for env in _environments():
        assert evaluate(unstamped, env) == evaluate(expr, env)


def test_bool_constants():
    assert evaluate(TRUE, {}) == 1
    assert evaluate(FALSE, {}) == 0
