"""The certificate-keyed result cache, its store, and the serving paths.

The cache's safety contract is the subject here: a key must change whenever
the query's semantics change (no stale hits), a stored entry is never
trusted (every hit is re-validated, tampered entries are demoted to misses),
and invariant minimization must hand back certificates that still pass the
independent validator on every suite design.
"""

import json
import os

import pytest

from repro.benchmarks import BENCHMARKS, get_benchmark, load_system
from repro.cache import ResultCache, cache_key, minimize_certificate
from repro.cache.store import CacheEntry, CertificateStore
from repro.certs import validate_certificate
from repro.engines import (
    BatchItem,
    BatchRunner,
    PortfolioRunner,
    Status,
    VerificationTask,
    default_budget_ladder,
    default_portfolio_configs,
    learn_priors,
    make_engine,
)
from repro.engines.batch import run_sequential_ladder
from repro.exprs import TRUE, bv_const


def _verify(design, engine="pdr", **options):
    system = load_system(design)
    result = make_engine(engine, system, **options).verify(timeout=90)
    assert result.status in Status.DEFINITIVE
    assert result.certificate is not None
    return system, result


# ---------------------------------------------------------------------------
# keys: any semantic mutation of the query must miss
# ---------------------------------------------------------------------------


def test_key_is_deterministic_across_loads():
    first = load_system("huffman_dec")
    second = load_system("huffman_dec")
    prop = first.properties[0].name
    assert cache_key(first, prop) == cache_key(second, prop)


def test_key_changes_with_property_and_representation():
    system = load_system("mac16")
    names = [prop.name for prop in system.properties]
    assert len(names) >= 2  # the suite's multi-property design
    assert cache_key(system, names[0]) != cache_key(system, names[1])
    assert cache_key(system, names[0], "word") != cache_key(system, names[0], "bit")


def test_key_changes_when_design_mutates():
    base = load_system("huffman_dec")
    prop = base.properties[0].name
    reference = cache_key(base, prop)

    mutated = load_system("huffman_dec")
    name, expr = next(iter(mutated.next.items()))
    mutated.set_next(name, expr + bv_const(1, expr.width))
    assert cache_key(mutated, prop) != reference

    reinit = load_system("huffman_dec")
    name, expr = next(iter(reinit.init.items()))
    reinit.set_init(name, expr + bv_const(1, expr.width))
    assert cache_key(reinit, prop) != reference

    constrained = load_system("huffman_dec")
    constrained.add_constraint(TRUE)
    assert cache_key(constrained, prop) != reference


# ---------------------------------------------------------------------------
# the cache proper: store, hit after re-validation, stale-miss
# ---------------------------------------------------------------------------


def test_safe_roundtrip_hits_after_revalidation(tmp_path):
    system, result = _verify("huffman_dec")
    cache = ResultCache(str(tmp_path))
    outcome = cache.store(
        system, result.property_name, "word", result, design="huffman_dec"
    )
    assert outcome.stored

    lookup = cache.lookup(system, result.property_name, "word")
    assert lookup.hit
    assert lookup.result.status == Status.SAFE
    assert lookup.validation is not None and lookup.validation.ok
    assert lookup.result.detail["cache"]["design"] == "huffman_dec"
    assert cache.stats()["hits"] == 1 and cache.stats()["entries"] == 1


def test_unsafe_roundtrip_serves_witness(tmp_path):
    system, result = _verify("daio", engine="bmc", max_bound=70)
    cache = ResultCache(str(tmp_path))
    assert cache.store(system, result.property_name, "word", result).stored
    lookup = cache.lookup(system, result.property_name, "word")
    assert lookup.hit
    assert lookup.result.status == Status.UNSAFE
    assert lookup.result.certificate.kind == "witness"


def test_mutated_design_misses_no_stale_hit(tmp_path):
    system, result = _verify("huffman_dec")
    cache = ResultCache(str(tmp_path))
    cache.store(system, result.property_name, "word", result)

    mutated = load_system("huffman_dec")
    name, expr = next(iter(mutated.next.items()))
    mutated.set_next(name, expr + bv_const(1, expr.width))
    lookup = cache.lookup(mutated, result.property_name, "word")
    assert not lookup.hit
    assert lookup.reason == "absent"  # different key: the entry is invisible


def test_indefinitive_and_uncertified_results_are_not_stored(tmp_path):
    from repro.engines.result import VerificationResult

    system = load_system("huffman_dec")
    prop = system.properties[0].name
    cache = ResultCache(str(tmp_path))
    unknown = VerificationResult(Status.UNKNOWN, "bmc", prop)
    assert not cache.store(system, prop, "word", unknown).stored
    bare = VerificationResult(Status.SAFE, "bmc", prop)
    assert not cache.store(system, prop, "word", bare).stored
    assert cache.stats()["entries"] == 0


# ---------------------------------------------------------------------------
# tampered / corrupted entries: demoted to misses, never served
# ---------------------------------------------------------------------------


def _stored_entry_path(cache, system, property_name):
    key = cache.key_for(system, property_name, "word")
    return key, cache.store_backend.path_for(key)


def test_corrupted_entry_reads_as_absent(tmp_path):
    system, result = _verify("huffman_dec")
    cache = ResultCache(str(tmp_path))
    cache.store(system, result.property_name, "word", result)
    _, path = _stored_entry_path(cache, system, result.property_name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    lookup = cache.lookup(system, result.property_name, "word")
    assert not lookup.hit and lookup.reason == "absent"


def test_flipped_status_cannot_justify_and_is_demoted(tmp_path):
    system, result = _verify("huffman_dec")
    cache = ResultCache(str(tmp_path))
    cache.store(system, result.property_name, "word", result)
    _, path = _stored_entry_path(cache, system, result.property_name)
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    document["status"] = Status.UNSAFE  # an invariant cannot prove UNSAFE
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    lookup = cache.lookup(system, result.property_name, "word")
    assert not lookup.hit and lookup.demoted
    assert not os.path.exists(path)  # the bad entry was dropped


def test_forged_invariant_fails_revalidation_and_is_demoted(tmp_path):
    """A syntactically fine but wrong certificate is caught by the validator."""
    import dataclasses

    system, result = _verify("huffman_dec")
    cache = ResultCache(str(tmp_path))
    key = cache.key_for(system, result.property_name, "word")
    forged = dataclasses.replace(result.certificate, invariant=TRUE)
    cache.store_backend.save(
        CacheEntry(
            key=key,
            status=Status.SAFE,
            property_name=result.property_name,
            engine="oracle",
            representation="word",
            certificate=forged,
        )
    )
    lookup = cache.lookup(system, result.property_name, "word")
    assert not lookup.hit and lookup.demoted
    assert "re-validation failed" in lookup.reason
    assert cache.stats()["demotions"] == 1
    # the demotion deleted the forgery: the next lookup is a plain miss
    assert cache.lookup(system, result.property_name, "word").reason == "absent"


def test_entry_under_wrong_key_does_not_impersonate(tmp_path):
    system, result = _verify("huffman_dec")
    cache = ResultCache(str(tmp_path))
    cache.store(system, result.property_name, "word", result)
    key, path = _stored_entry_path(cache, system, result.property_name)
    other = cache.key_for(system, result.property_name, "bit")
    other_path = cache.store_backend.path_for(other)
    os.makedirs(os.path.dirname(other_path), exist_ok=True)
    with open(path, "r", encoding="utf-8") as src, open(
        other_path, "w", encoding="utf-8"
    ) as dst:
        dst.write(src.read())
    assert cache.store_backend.load(other) is None  # key/file mismatch
    assert not cache.lookup(system, result.property_name, "bit").hit


# ---------------------------------------------------------------------------
# minimization: smaller, still validated by the independent checker
# ---------------------------------------------------------------------------


SAFE_DESIGNS = [
    name
    for name, benchmark in sorted(BENCHMARKS.items())
    if benchmark.expected == Status.SAFE
]


@pytest.mark.parametrize("design", SAFE_DESIGNS)
def test_minimized_invariants_validate_on_every_safe_suite_design(design):
    system = load_system(design)
    ladder = default_budget_ladder(bound=40, timeout=60)
    result = run_sequential_ladder(system, None, ladder, timeout=60)
    assert result.status == Status.SAFE, (design, result.status)
    minimization = minimize_certificate(system, result.certificate, timeout=60)
    assert minimization.size <= minimization.original_size
    validation = validate_certificate(system, minimization.certificate)
    assert validation.ok, (design, validation.reason)


def test_minimization_shrinks_a_padded_invariant():
    """Redundant conjuncts injected into a real invariant are dropped."""
    import dataclasses

    from repro.exprs import bool_and

    system, result = _verify("huffman_dec")
    certificate = result.certificate
    state = next(iter(system.state_vars))
    width = system.state_vars[state]
    # pad with tautological-but-droppable conjuncts over a real state var
    from repro.exprs import bv_ule, bv_var

    pad = bv_ule(bv_var(state, width), bv_const((1 << width) - 1, width))
    padded = dataclasses.replace(
        certificate, invariant=bool_and(certificate.invariant, pad, pad)
    )
    assert validate_certificate(system, padded).ok
    minimization = minimize_certificate(system, padded)
    assert minimization.dropped >= 1
    assert validate_certificate(system, minimization.certificate).ok


# ---------------------------------------------------------------------------
# the batch runner: cold fills, warm is all re-validated hits
# ---------------------------------------------------------------------------


def test_batch_cold_then_warm_all_hits(tmp_path):
    items = [
        BatchItem.benchmark("daio"),
        BatchItem.benchmark("huffman_dec"),
        BatchItem.benchmark("mac16"),  # multi-property: sharded per property
    ]
    cache = ResultCache(str(tmp_path))
    cold = BatchRunner(cache=cache, timeout=90, bound=80, jobs=2).run(items)
    assert len(cold.items) == 4  # mac16 contributes two (design, property) units
    assert cold.cache_hits == 0 and cold.cache_misses == 4
    assert cold.all_definitive and cold.all_correct
    assert all(item.stored for item in cold.items)

    warm_cache = ResultCache(str(tmp_path))
    warm = BatchRunner(cache=warm_cache, timeout=90, bound=80, jobs=2).run(items)
    assert warm.cache_hits == 4 and warm.cache_misses == 0
    assert all(item.source == "cache" and item.validated for item in warm.items)
    assert warm.verdicts() == cold.verdicts()


def test_batch_without_cache_still_sweeps():
    report = BatchRunner(timeout=90, bound=80, jobs=2).run(
        [BatchItem.benchmark("daio"), BatchItem.benchmark("huffman_dec")]
    )
    assert report.all_definitive and report.all_correct
    assert report.cache_hits == 0 and report.cache_misses == 0


# ---------------------------------------------------------------------------
# the budget ladder: cheap rungs first, priors order within a rung
# ---------------------------------------------------------------------------


def test_default_ladder_orders_cost_tiers():
    ladder = default_budget_ladder(bound=40, timeout=60)
    assert [rung.tier for rung in ladder] == ["cheap", "medium", "heavy"]
    cheap = {config.engine for config in ladder[0].configs}
    assert cheap == {"rsim", "bmc", "absint"}
    # non-final rungs are budgeted, the last rung takes what remains
    assert all(rung.budget is not None for rung in ladder[:-1])
    assert ladder[-1].budget is None


def test_priors_reorder_a_rung(tmp_path):
    report = {
        "portfolio": [
            {
                "singles": {
                    "pdr[word]": {"runtime_s": 0.1, "status": "safe"},
                    "interpolation[word]": {"runtime_s": 9.0, "status": "safe"},
                }
            }
        ]
    }
    path = tmp_path / "BENCH_fake.json"
    path.write_text(json.dumps(report))
    priors = learn_priors([str(path)])
    assert priors["pdr"]["score"] < priors["interpolation"]["score"]
    ladder = default_budget_ladder(bound=40, timeout=60, priors=priors)
    heavy = [config.engine for config in ladder[-1].configs]
    assert heavy.index("pdr") < heavy.index("interpolation")


def test_ladder_runner_decides_daio_in_cheap_rung():
    runner = PortfolioRunner(
        ladder=default_budget_ladder(bound=80, timeout=120),
        timeout=120,
        expected=Status.UNSAFE,
    )
    result = runner.run(VerificationTask.benchmark("daio"))
    assert result.status == Status.UNSAFE
    detail = result.detail["ladder"]
    assert detail["decided_rung"] == 0
    # the cheap rung never launched the provers: total CPU stays below what
    # the all-at-once fan-out burns on its cancelled k-induction/pdr workers
    fanout = PortfolioRunner(
        configs=default_portfolio_configs(bound=80),
        timeout=120,
        expected=Status.UNSAFE,
    ).run(VerificationTask.benchmark("daio"))
    assert fanout.status == Status.UNSAFE
    assert result.detail["cpu_s"] <= fanout.detail["cpu_s"]


def test_sequential_ladder_reports_attempts():
    system = load_system("daio")
    result = run_sequential_ladder(
        system, None, default_budget_ladder(bound=80, timeout=90), timeout=90
    )
    assert result.status == Status.UNSAFE
    assert result.detail["ladder_rung"] == 0
    assert result.detail["ladder_attempts"][0]["rung"] == 0


# ---------------------------------------------------------------------------
# the CLI serving path: --cache-dir fills on miss, hits on repeat
# ---------------------------------------------------------------------------


def test_verify_cli_single_query_cache(tmp_path, capsys):
    from repro.tools.verify_cli import main

    cache_dir = str(tmp_path / "cache")
    argv = ["daio", "--engine", "bmc", "--bound", "70", "--cache-dir", cache_dir]
    assert main(argv) == 0
    first = capsys.readouterr()
    # progress narration goes to stderr; the result lines own stdout
    assert "cache miss" in first.err and "cached under key" in first.out
    assert main(argv) == 0
    second = capsys.readouterr().err
    assert "cache hit" in second and "re-validated" in second


def test_verify_cli_portfolio_representations_cache_roundtrip(tmp_path, capsys):
    """Lookup and store must key the same representation (--representations)."""
    from repro.tools.verify_cli import main

    cache_dir = str(tmp_path / "cache")
    argv = [
        "daio", "--portfolio", "--representations", "word",
        "--bound", "80", "--cache-dir", cache_dir,
    ]
    assert main(argv) == 0
    assert "cached under key" in capsys.readouterr().out
    assert main(argv) == 0
    assert "cache hit" in capsys.readouterr().err


def test_verify_cli_batch_respects_property_scope(tmp_path, capsys):
    from repro.tools.verify_cli import main

    argv = [
        "mac16", "--batch", "--quiet", "--property", "cnt_in_range",
        "--timeout", "90", "--bound", "80",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "cnt_in_range" in out and "cnt_le_9" not in out
    assert "1 items" in out


def test_verify_cli_rejects_cross_check_with_ladder_or_batch(capsys):
    from repro.tools.verify_cli import main

    for mode in ("--ladder", "--batch"):
        with pytest.raises(SystemExit) as excinfo:
            main(["daio", mode, "--cross-check"])
        assert excinfo.value.code == 2
        assert "--cross-check" in capsys.readouterr().err


def test_file_task_memo_invalidates_on_edit(tmp_path):
    """A long-lived process must not serve a stale parse of an edited file."""
    from repro.aig import aig_from_transition_system, write_aiger

    path = tmp_path / "design.aag"
    path.write_text(write_aiger(aig_from_transition_system(load_system("daio"))))
    task = VerificationTask.aiger(str(path))
    first = task.load()
    assert task.load() is first  # memoized while the file is unchanged

    path.write_text(
        write_aiger(aig_from_transition_system(load_system("huffman_dec")))
    )
    os.utime(path, ns=(0, 0))  # force a stamp change even on coarse clocks
    second = task.load()
    assert second is not first
    assert len(second.state_vars) != len(first.state_vars)


def test_sequential_ladder_attributes_runtime_to_deciding_engine():
    """Escalation probes must not inflate the deciding engine's runtime."""
    system = load_system("buffalloc")  # cheap rung cannot decide this one
    result = run_sequential_ladder(
        system, None, default_budget_ladder(bound=40, timeout=60), timeout=60
    )
    assert result.status == Status.SAFE
    assert result.detail["ladder_rung"] >= 1
    probes = sum(
        attempt["runtime_s"]
        for attempt in result.detail["ladder_attempts"][:-1]
    )
    assert result.detail["ladder_wall_s"] >= result.runtime + probes * 0.5
    assert result.runtime < result.detail["ladder_wall_s"]


def test_batch_survives_unloadable_target(tmp_path):
    """One bad file yields one ERROR item, not an aborted sweep."""
    bad = BatchItem(VerificationTask.aiger(str(tmp_path / "missing.aag")))
    report = BatchRunner(timeout=90, bound=80, jobs=2).run(
        [bad, BatchItem.benchmark("daio")]
    )
    by_design = {item.design: item for item in report.items}
    assert by_design["missing.aag"].status == Status.ERROR
    assert by_design["daio"].status == Status.UNSAFE


def test_learn_priors_canonicalizes_engine_aliases(tmp_path):
    """Batch sweeps record class names; priors must land on registry names."""
    report = {
        "sweeps": {
            "cold": {
                "items": [
                    {
                        "source": "abstract-interpretation",
                        "runtime_s": 0.01,
                        "status": "safe",
                    }
                ]
            }
        }
    }
    path = tmp_path / "BENCH_fake.json"
    path.write_text(json.dumps(report))
    priors = learn_priors([str(path)])
    assert "absint" in priors and "abstract-interpretation" not in priors


def test_verify_cli_rejects_certify_with_batch(capsys):
    from repro.tools.verify_cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["daio", "--batch", "--certify"])
    assert excinfo.value.code == 2
    assert "--certify" in capsys.readouterr().err


def test_verify_cli_cache_hit_still_certifies(tmp_path, capsys):
    from repro.tools.verify_cli import main

    cache_dir = str(tmp_path / "cache")
    argv = [
        "daio", "--engine", "bmc", "--bound", "70",
        "--cache-dir", cache_dir, "--certify",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "cache hit" in captured.err
    assert "certification:" in captured.out and "VALIDATED" in captured.out


def test_verify_cli_batch_twice_all_hits(tmp_path, capsys):
    from repro.tools.verify_cli import main

    cache_dir = str(tmp_path / "cache")
    argv = [
        "daio", "huffman_dec", "--batch", "--quiet",
        "--cache-dir", cache_dir, "--timeout", "90", "--bound", "80",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2 cache hit(s), 0 miss(es)" in out
