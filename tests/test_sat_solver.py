"""SAT solver unit tests: propagation, assumption cores, proofs, bulk APIs."""

import pytest

from repro.sat.cnf import CNF
from repro.sat.interpolate import Interpolator, itp_evaluate
from repro.sat.solver import Solver, SolverResult, luby


def test_luby_sequence():
    # the seed's recurrence looped forever from luby(2); pin the fixed sequence
    assert [luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
    ]


def test_unit_propagation_chain():
    solver = Solver()
    a, b, c, d = solver.new_vars(4)
    solver.add_clause([a])
    solver.add_clause([-a, b])
    solver.add_clause([-b, c])
    solver.add_clause([-c, d])
    assert solver.solve() == SolverResult.SAT
    assert solver.model_value(a) and solver.model_value(d)
    assert solver.stats.propagations >= 4
    assert solver.stats.decisions == 0  # everything follows at level 0


def test_simple_unsat():
    solver = Solver()
    x, y = solver.new_vars(2)
    solver.add_clause([x, y])
    solver.add_clause([x, -y])
    solver.add_clause([-x, y])
    solver.add_clause([-x, -y])
    assert solver.solve() == SolverResult.UNSAT
    assert not solver.ok or solver.solve() == SolverResult.UNSAT


def test_failed_assumptions_core():
    solver = Solver()
    x, y, z = solver.new_vars(3)
    solver.add_clause([-x, y])
    # x forces y; assuming -y alongside x must fail, z is irrelevant
    assert solver.solve(assumptions=[x, z, -y]) == SolverResult.UNSAT
    assert solver.failed_assumptions
    assert solver.failed_assumptions <= {x, z, -y}
    assert z not in solver.failed_assumptions
    # the core is sound: assuming just the core is already UNSAT
    assert solver.solve(assumptions=sorted(solver.failed_assumptions)) == SolverResult.UNSAT


def test_incremental_reuse_after_unsat_assumptions():
    solver = Solver()
    x, y = solver.new_vars(2)
    solver.add_clause([-x, y])
    assert solver.solve(assumptions=[x, -y]) == SolverResult.UNSAT
    assert solver.solve(assumptions=[x, y]) == SolverResult.SAT
    assert solver.solve() == SolverResult.SAT


def test_proof_logging_and_interpolation():
    solver = Solver(proof=True)
    a, b = solver.new_vars(2)
    a_ids = [solver.add_clause([a]), solver.add_clause([-a, b])]
    b_ids = [solver.add_clause([-b])]
    assert solver.solve() == SolverResult.UNSAT
    assert solver.final_proof is not None
    interpolant = Interpolator(solver, a_ids, b_ids).compute()
    # A implies I and I contradicts B: with b shared, I must force b true
    assert itp_evaluate(interpolant, {b: True}) is True
    assert itp_evaluate(interpolant, {b: False}) is False


def test_tautology_and_duplicate_literals():
    solver = Solver()
    x, y = solver.new_vars(2)
    solver.add_clause([x, -x, y])  # tautology: must not constrain anything
    solver.add_clause([y, y, y])  # deduplicated to a unit
    assert solver.solve() == SolverResult.SAT
    assert solver.model_value(y)
    assert solver.solve(assumptions=[-x]) == SolverResult.SAT


def _pigeonhole_cnf(holes: int) -> CNF:
    """PHP(holes+1, holes): unsatisfiable, forces real conflict analysis."""
    cnf = CNF()
    pigeons = holes + 1
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[p, h] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[p1, h], -var[p2, h]])
    return cnf


def test_pigeonhole_unsat_with_learning():
    solver = Solver()
    solver.add_cnf(_pigeonhole_cnf(4))
    assert solver.solve() == SolverResult.UNSAT
    assert solver.stats.conflicts > 0
    assert solver.stats.learned_clauses > 0


def test_add_clauses_mapped_identity_matches_add_clause():
    """The bulk template path must not change search behaviour at all."""
    cnf = _pigeonhole_cnf(4)

    reference = Solver()
    reference.ensure_vars(cnf.num_vars)
    for clause in cnf.clauses:
        reference.add_clause(clause)
    assert reference.solve() == SolverResult.UNSAT

    bulk = Solver()
    table = [0] + bulk.new_vars(cnf.num_vars)
    start, end = bulk.add_clauses_mapped(cnf.clauses, table)
    assert (start, end) == (0, len(cnf.clauses))
    assert bulk.solve() == SolverResult.UNSAT

    # identical propagation/decision/conflict counts: the fast path is
    # behaviourally invisible (asserted via SolverStats per the perf PR)
    assert bulk.stats.propagations == reference.stats.propagations
    assert bulk.stats.decisions == reference.stats.decisions
    assert bulk.stats.conflicts == reference.stats.conflicts


def test_add_clauses_mapped_remaps_variables():
    solver = Solver()
    shift = solver.new_vars(3)  # occupy 1..3
    table = [0, *solver.new_vars(2)]  # template vars 1, 2 -> solver vars 4, 5
    solver.add_clauses_mapped([(1, 2), (-1, 2), (-2,)], table)
    assert solver.solve() == SolverResult.UNSAT
    # the original block is untouched and free
    assert solver.solve(assumptions=[shift[0]]) == SolverResult.UNSAT


def test_add_fresh_clauses_offset_block():
    solver = Solver()
    base = solver.new_vars(3)[0]  # template uses vars 1..3, block starts here
    delta = base - 1
    solver.add_fresh_clauses([(1, 2), (-1, 3), (-2, 3)], delta)
    assert solver.solve(assumptions=[-(3 + delta)]) == SolverResult.UNSAT
    assert solver.solve(assumptions=[3 + delta]) == SolverResult.SAT


def test_cnf_add_clauses_mapped():
    source = CNF()
    v1, v2 = source.new_var(), source.new_var()
    source.add_clause([v1, -v2])
    target = CNF()
    table = [0, target.new_var(), target.new_var()]
    target.add_clauses_mapped(source.clauses, table)
    assert target.clauses == [(table[v1], -table[v2])]
    assert target.num_vars == 2


def test_deadline_returns_unknown():
    import time

    solver = Solver()
    solver.add_cnf(_pigeonhole_cnf(7))
    outcome = solver.solve(deadline=time.monotonic())  # already expired
    assert outcome in (SolverResult.UNKNOWN, SolverResult.UNSAT)


def test_conflict_limit_returns_unknown():
    solver = Solver()
    solver.add_cnf(_pigeonhole_cnf(7))
    assert solver.solve(conflict_limit=5) == SolverResult.UNKNOWN
