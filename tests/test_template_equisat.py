"""Template path vs legacy path: identical verdicts frame for frame.

The CNF-template fast path (``incremental_template=True``, the default) must
be equisatisfiable with the legacy per-frame re-blast at every depth, for both
the word-level and the bit-level representations.  These tests run BMC (and a
couple of unbounded engines) both ways and require identical verdicts and
bounds — on safe, unsafe and constrained designs.
"""

import pytest

from repro.benchmarks import get_benchmark, load_system
from repro.engines.bmc import BMCEngine
from repro.engines.encoding import FrameEncoder, template_library
from repro.engines.kinduction import KInductionEngine
from repro.engines.pdr import PDREngine
from repro.exprs import bv_const, bv_ne
from repro.netlist import TransitionSystem

#: three suite designs plus depth; daio/tlc stay UNKNOWN at these bounds,
#: exercising the full unroll on both paths
EQUISAT_BENCHMARKS = ["huffman_dec", "daio", "fifo", "arbiter"]
REPRESENTATIONS = ["word", "bit"]


def _tiny_unsafe() -> TransitionSystem:
    """A counter whose property fails at cycle 3 (exercises the SAT path)."""
    ts = TransitionSystem("tiny_unsafe")
    c = ts.add_state_var("c", 3, init=0)
    ts.set_next("c", c + bv_const(1, 3))
    ts.add_property("p", bv_ne(c, bv_const(3, 3)))
    return ts


def _bmc_outcome(system, representation, template, max_bound=5):
    engine = BMCEngine(
        system,
        max_bound=max_bound,
        representation=representation,
        incremental_template=template,
    )
    result = engine.verify(timeout=60)
    cex_len = result.counterexample.length if result.counterexample else None
    # solver_stats legitimately differ between the encodings: drop them
    detail = {k: v for k, v in result.detail.items() if k != "solver_stats"}
    return result.status, detail, cex_len


@pytest.mark.parametrize("name", EQUISAT_BENCHMARKS)
@pytest.mark.parametrize("representation", REPRESENTATIONS)
def test_bmc_equisat_on_benchmarks(name, representation):
    system = load_system(name)
    template = _bmc_outcome(system, representation, True)
    legacy = _bmc_outcome(system, representation, False)
    assert template == legacy


@pytest.mark.parametrize("representation", REPRESENTATIONS)
def test_bmc_equisat_unsafe_counterexample(representation):
    system = _tiny_unsafe()
    template = _bmc_outcome(system, representation, True, max_bound=6)
    legacy = _bmc_outcome(system, representation, False, max_bound=6)
    assert template == legacy
    assert template[0] == "unsafe"
    assert template[1]["bound"] == 3


@pytest.mark.parametrize("name", ["huffman_enc", "rcu", "iqueue"])
@pytest.mark.parametrize("representation", REPRESENTATIONS)
def test_kinduction_equisat(name, representation):
    outcomes = {}
    for template in (True, False):
        system = load_system(name)
        result = KInductionEngine(
            system,
            max_k=8,
            representation=representation,
            incremental_template=template,
        ).verify(timeout=60)
        detail = {k: v for k, v in result.detail.items() if k != "solver_stats"}
        outcomes[template] = (result.status, detail)
    assert outcomes[True] == outcomes[False]
    assert outcomes[True][0] == get_benchmark(name).expected


@pytest.mark.parametrize("representation", REPRESENTATIONS)
def test_pdr_equisat(representation):
    outcomes = {}
    for template in (True, False):
        system = load_system("huffman_dec")
        result = PDREngine(
            system,
            representation=representation,
            incremental_template=template,
        ).verify(timeout=60)
        outcomes[template] = (result.status, result.detail.get("frames"))
    assert outcomes[True] == outcomes[False]
    assert outcomes[True][0] == "safe"


def test_template_library_is_cached_per_system():
    system = load_system("arbiter")
    first = template_library(system, "word")
    second = template_library(system, "word")
    assert first is second
    # a different build of the same design gets its own library
    other = load_system("arbiter")
    assert template_library(other, "word") is not first


def test_template_cache_invalidated_on_mutation():
    """Mutating a design between runs must not reuse the stale template."""
    system = _tiny_unsafe()
    unsafe = _bmc_outcome(system, "word", True, max_bound=6)
    assert unsafe[0] == "unsafe"
    # retarget the counter to hold its value: the property becomes invariant
    system.set_next("c", system.var("c"))
    fixed = _bmc_outcome(system, "word", True, max_bound=6)
    legacy = _bmc_outcome(system, "word", False, max_bound=6)
    assert fixed == legacy
    assert fixed[0] == "unknown"


def test_template_cache_sees_added_property():
    system = _tiny_unsafe()
    encoder = FrameEncoder(system, incremental_template=True)
    encoder.property_literal("p", 0)
    system.add_property("p2", bv_ne(system.var("c"), bv_const(7, 3)))
    fresh = FrameEncoder(system, incremental_template=True)
    assert fresh.property_literal("p2", 0)  # must not raise KeyError


def test_template_structure():
    system = load_system("buffalloc")
    library = template_library(system, "word")
    template = library.trans_template
    # canonical renumbering: internal gate vars form the trailing block
    assert template.internal == tuple(
        range(template.named_count + 1, template.num_vars + 1)
    )
    state_names = {name for name, _, _ in template.cur}
    next_names = {name for name, _, _ in template.nxt}
    assert next_names == set(system.state_vars)
    assert state_names <= set(system.state_vars)
    # gate clauses never touch named variables
    for clause in template.gate_clauses + template.gate_binary:
        assert all(abs(lit) > template.named_count for lit in clause)
    assert template.num_clauses == (
        len(template.gate_clauses)
        + len(template.gate_binary)
        + len(template.boundary_clauses)
    )
    # the binary split is exact: no two-literal clause left in gate_clauses
    assert all(len(clause) > 2 for clause in template.gate_clauses)
    assert all(len(clause) == 2 for clause in template.gate_binary)


def test_property_literal_cached_per_frame():
    system = load_system("arbiter")
    encoder = FrameEncoder(system, incremental_template=True)
    encoder.assert_init(0)
    first = encoder.property_literal("one_hot_grant", 0)
    clauses_after = encoder.solver.solver.num_clauses
    second = encoder.property_literal("one_hot_grant", 0)
    assert first == second
    assert encoder.solver.solver.num_clauses == clauses_after
