"""End-to-end engine verdicts and the process-based portfolio runner."""

import time

import pytest

from repro.benchmarks import get_benchmark, load_system
from repro.engines import (
    PortfolioConfig,
    PortfolioRunner,
    Status,
    VerificationTask,
    default_portfolio_configs,
    make_engine,
)


# ---------------------------------------------------------------------------
# end-to-end single-engine verdicts (each portfolio engine on >= 2 designs)
# ---------------------------------------------------------------------------

VERDICT_CASES = [
    # (engine, design, options)
    ("bmc", "daio", {"max_bound": 70}),
    ("bmc", "tlc", {"max_bound": 70}),
    ("k-induction", "huffman_dec", {}),
    ("k-induction", "buffalloc", {}),
    ("interpolation", "huffman_dec", {}),
    ("interpolation", "arbiter", {}),
    ("pdr", "huffman_dec", {}),
    ("pdr", "buffalloc", {}),
    ("kiki", "huffman_dec", {}),
    ("kiki", "buffalloc", {}),
    ("kiki", "daio", {"max_k": 70}),
]


@pytest.mark.parametrize("engine_name,design,options", VERDICT_CASES)
def test_engine_verdict_end_to_end(engine_name, design, options):
    benchmark = get_benchmark(design)
    engine = make_engine(engine_name, benchmark.load(), **options)
    result = engine.verify(timeout=90)
    assert result.status == benchmark.expected, (engine_name, design, result)
    if benchmark.expected == Status.UNSAFE:
        assert result.counterexample is not None
        assert result.counterexample.length == benchmark.bug_cycle + 1


def test_bmc_counterexample_reproduces_cycle_64_bug():
    """The daio bug manifests at cycle 64, as stated in Section IV of the paper."""
    result = make_engine("bmc", load_system("daio"), max_bound=70).verify(timeout=90)
    assert result.status == Status.UNSAFE
    assert result.detail["bound"] == 64
    assert result.counterexample.length == 65


# ---------------------------------------------------------------------------
# the portfolio runner
# ---------------------------------------------------------------------------


def test_default_configs_cross_engines_and_representations():
    word_only = default_portfolio_configs()
    assert [config.engine for config in word_only] == [
        "bmc", "k-induction", "interpolation", "pdr", "kiki",
    ]
    both = default_portfolio_configs(representations=("word", "bit"))
    assert len(both) == 10
    bounded = default_portfolio_configs(bound=12)[0]
    assert bounded.options_dict["max_bound"] == 12


def test_portfolio_refutes_daio_and_cancels_losers():
    events = []
    runner = PortfolioRunner(
        configs=default_portfolio_configs(bound=80),
        timeout=120,
        on_event=events.append,
    )
    result = runner.run(VerificationTask.benchmark("daio"))
    assert result.status == Status.UNSAFE
    assert result.winner_engine == "bmc"
    assert result.counterexample is not None
    assert result.counterexample.length == 65
    # losers must have been cancelled (or skipped), not run to completion
    loser_states = {
        outcome.state for outcome in result.workers if outcome.label != result.winner
    }
    assert loser_states <= {"cancelled", "skipped", "done"}
    assert "cancelled" in loser_states or "skipped" in loser_states
    # the race must finish well before the slowest loser would have
    # (k-induction alone needs ~10s on this design)
    assert result.runtime < 10
    assert any(event["event"] == "result" for event in events)


def test_portfolio_proves_safe_design():
    runner = PortfolioRunner(configs=default_portfolio_configs(bound=40), timeout=120)
    result = runner.run(VerificationTask.benchmark("buffalloc"))
    assert result.status == Status.SAFE
    assert result.winner is not None
    winning = result.worker(result.winner)
    assert winning.result.status == Status.SAFE


def test_portfolio_timeout_aggregation():
    # two prover configs that cannot conclude on the unsafe tlc design in time
    configs = [
        PortfolioConfig.of("pdr", representation="word"),
        PortfolioConfig.of("interpolation", representation="word"),
    ]
    runner = PortfolioRunner(configs=configs, timeout=1.0)
    result = runner.run(VerificationTask.benchmark("tlc"))
    assert result.status == Status.TIMEOUT
    assert result.winner is None
    # every configuration is accounted for in the aggregate
    assert {outcome.label for outcome in result.workers} == {
        "pdr[word]", "interpolation[word]",
    }
    statuses = {outcome.status for outcome in result.workers}
    assert statuses <= {Status.TIMEOUT, "timed-out", "cancelled", "crashed"}


def test_portfolio_flags_wrong_answer_against_ground_truth():
    runner = PortfolioRunner(
        configs=[PortfolioConfig.of("bmc", max_bound=80)],
        timeout=120,
        expected=Status.SAFE,  # deliberately wrong ground truth for daio
    )
    result = runner.run(VerificationTask.benchmark("daio"))
    assert result.status == Status.WRONG
    assert result.detail["claimed"] == Status.UNSAFE


def test_cross_check_adjudicates_disagreement_by_certificate():
    """An injected wrong-verdict engine loses the cross-check adjudication."""
    runner = PortfolioRunner(
        configs=[
            PortfolioConfig.of("bmc", max_bound=80),
            PortfolioConfig.of("oracle", claim=Status.SAFE),
        ],
        timeout=120,
        cross_check=True,
    )
    result = runner.run(VerificationTask.benchmark("daio"))
    # mere disagreement is no longer WRONG: bmc's witness validates, the
    # oracle's forged TRUE invariant does not, so bmc's verdict stands
    assert result.status == Status.UNSAFE
    assert result.winner_engine == "bmc"
    assert set(result.detail["disagreement"].values()) == {Status.SAFE, Status.UNSAFE}
    adjudication = result.detail["adjudication"]
    assert adjudication["bmc[word]"]["certified"] is True
    assert adjudication["oracle[word]"]["certified"] is False
    assert "adjudicated" in result.reason


def test_cross_check_without_any_valid_certificate_stays_wrong():
    """Two liars disagreeing cannot be adjudicated: the verdict is WRONG."""
    runner = PortfolioRunner(
        configs=[
            PortfolioConfig.of("oracle", claim=Status.SAFE),
            PortfolioConfig.of("oracle", claim=Status.UNSAFE, representation="bit"),
        ],
        timeout=60,
        cross_check=True,
    )
    result = runner.run(VerificationTask.benchmark("daio"))
    assert result.status == Status.WRONG
    assert "could not adjudicate" in result.reason
    adjudication = result.detail["adjudication"]
    assert all(not verdict["certified"] for verdict in adjudication.values())


def test_worker_error_is_reported_not_raised():
    runner = PortfolioRunner(
        configs=[PortfolioConfig.of("bmc", representation="nonsense")],
        timeout=30,
    )
    result = runner.run(VerificationTask.benchmark("huffman_dec"))
    assert result.status == Status.ERROR
    assert result.workers[0].result.status == Status.ERROR
    assert "representation" in result.workers[0].result.reason


def test_task_loaders_roundtrip(tmp_path):
    from repro.aig import aig_from_transition_system, write_aiger

    system = load_system("daio")
    path = tmp_path / "daio.aag"
    path.write_text(write_aiger(aig_from_transition_system(system)))
    loaded = VerificationTask.aiger(str(path)).load()
    loaded.validate()
    assert len(loaded.properties) == 1
    result = make_engine("bmc", loaded, max_bound=70).verify(timeout=90)
    assert result.status == Status.UNSAFE
    assert result.counterexample.length == 65
