"""Setup shim so that editable installs work with the offline legacy toolchain."""
from setuptools import setup

setup()
