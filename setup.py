"""Setup shim so that editable installs work with the offline legacy toolchain."""
from setuptools import find_packages, setup

setup(
    name="repro-hw-unbounded",
    version="0.1.0",
    description=(
        "Reproduction of 'Unbounded safety verification for hardware using "
        "software analyzers': SAT-based word/bit-level model checking engines"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    extras_require={"dev": ["pytest"]},
    entry_points={
        "console_scripts": [
            "repro-bench = repro.tools.bench:main",
            "repro-cache = repro.tools.cache_cli:main",
            "repro-serve = repro.tools.serve_cli:main",
            "repro-serve-router = repro.tools.router_cli:main",
            "repro-trace = repro.tools.trace_cli:main",
            "repro-verify = repro.tools.verify_cli:main",
        ]
    },
)
